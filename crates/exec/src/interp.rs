//! The execution engine: green threads, yieldpoints, sampling checks, cost
//! accounting and profiling, dispatching over pre-decoded ops.
//!
//! The hot loop here runs the dense form built by [`PreparedModule`]: one
//! flat op arena per function, absolute branch targets, pre-folded cycle
//! costs and pre-classified backedges, so `step()` is a single fetch of
//! `ops[ip]` and a straight `match` on the decoded [`OpKind`] — no block
//! lookup, no cost re-derivation, no backedge-set probe. The semantic
//! reference for this engine is the tree-walking interpreter in
//! [`crate::naive`]; the two are differentially tested to produce
//! identical [`Outcome`]s.
//!
//! [`run`] keeps the classic entry point (it prepares internally);
//! [`run_prepared`] lets callers amortize one preparation over many runs
//! of the same (module, cost) cell, which is how the harness executes its
//! interval sweeps.

use isf_ir::{CallSiteId, FuncId, LocalId, Module};
use isf_profile::ProfileData;

use crate::cancel::{self, ArmedToken};
use crate::cost::CostModel;
use crate::error::{TrapKind, VmError};
use crate::heap::Heap;
use crate::outcome::Outcome;
use crate::prepared::{InstrEffect, Op, OpKind, PreparedModule};
use crate::profile::{NoMetrics, ProfileSink};
use crate::sched::SchedControl;
use crate::trace::{BurstRecord, NoTrace, TraceSink};
use crate::trigger::{Trigger, TriggerState};
use crate::value::Value;

/// Resource budgets a run must stay within. The paper's framework is
/// meant to run in production, where instrumentation must degrade
/// gracefully rather than take the host down; these limits are the
/// engine-level half of that contract — a run that exceeds one traps
/// deterministically ([`TrapKind::FuelExhausted`],
/// [`TrapKind::HeapExhausted`], [`TrapKind::StackOverflow`]) at the same
/// point in both execution engines, and the harness recovers instead of
/// crashing.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct ExecLimits {
    /// Abort with [`TrapKind::FuelExhausted`] past this many simulated
    /// cycles (`None` = unlimited).
    pub max_cycles: Option<u64>,
    /// Abort with [`TrapKind::HeapExhausted`] once more than this many
    /// heap words are allocated (`None` = unlimited). One allocation costs
    /// a header word plus a word per field or element.
    pub max_heap_words: Option<u64>,
    /// Maximum call-stack depth per thread
    /// ([`TrapKind::StackOverflow`] beyond it).
    pub max_stack: usize,
}

impl Default for ExecLimits {
    fn default() -> Self {
        Self {
            max_cycles: None,
            max_heap_words: None,
            max_stack: 4096,
        }
    }
}

impl ExecLimits {
    /// Unlimited cycles and heap with the default stack depth.
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// A cycle budget with the other limits at their defaults.
    pub fn cycles(max_cycles: u64) -> Self {
        Self {
            max_cycles: Some(max_cycles),
            ..Self::default()
        }
    }
}

/// Interpreter configuration.
#[derive(Copy, Clone, Debug)]
pub struct VmConfig {
    /// Per-instruction cycle costs.
    pub cost: CostModel,
    /// The sampling trigger evaluated by `check` terminators.
    pub trigger: Trigger,
    /// Simulated cycles between threadswitch-bit sets (Jalapeño's 10 ms
    /// timer analogue).
    pub timeslice: u64,
    /// Resource budgets (cycles, heap words, stack depth).
    pub limits: ExecLimits,
}

impl Default for VmConfig {
    fn default() -> Self {
        Self {
            cost: CostModel::default(),
            trigger: Trigger::Never,
            timeslice: 100_000,
            limits: ExecLimits::default(),
        }
    }
}

/// Runs `module` to completion under `config`, preparing it internally.
///
/// For repeated runs of the same module under the same cost model, build a
/// [`PreparedModule`] once and call [`run_prepared`] instead.
///
/// # Errors
///
/// Returns a [`VmError`] on any runtime trap (type errors, null
/// dereference, out-of-bounds access, deadlock, exceeded budgets).
pub fn run(module: &Module, config: &VmConfig) -> Result<Outcome, VmError> {
    let prepared = PreparedModule::prepare(module, &config.cost);
    run_prepared(&prepared, config)
}

/// Runs an already-prepared module to completion under `config`,
/// amortizing the preparation cost across repeated runs.
///
/// `config.trigger`, `config.timeslice` and `config.limits` may vary
/// freely between runs of one preparation;
/// `config.cost` must equal the cost model the module was prepared with,
/// because per-op costs were folded in at prepare time.
///
/// # Panics
///
/// Panics if `config.cost` differs from the preparation cost model.
///
/// # Errors
///
/// Returns a [`VmError`] on any runtime trap, exactly as [`run`] does.
pub fn run_prepared(prepared: &PreparedModule, config: &VmConfig) -> Result<Outcome, VmError> {
    run_prepared_traced(prepared, config, &mut NoTrace)
}

/// [`run`] with a burst-trace sink: prepares internally, then records every
/// sampling burst into `sink`. See [`crate::trace`] for the recording
/// contract.
///
/// # Errors
///
/// Returns a [`VmError`] on any runtime trap, exactly as [`run`] does.
pub fn run_traced<S: TraceSink>(
    module: &Module,
    config: &VmConfig,
    sink: &mut S,
) -> Result<Outcome, VmError> {
    let prepared = PreparedModule::prepare(module, &config.cost);
    run_prepared_traced(&prepared, config, sink)
}

/// [`run_prepared`] with a burst-trace sink.
///
/// The sink is a compile-time parameter: with [`NoTrace`] (what
/// [`run_prepared`] passes) every recording site compiles away and this
/// *is* the untraced hot loop.
///
/// # Panics
///
/// Panics if `config.cost` differs from the preparation cost model.
///
/// # Errors
///
/// Returns a [`VmError`] on any runtime trap, exactly as [`run`] does.
pub fn run_prepared_traced<S: TraceSink>(
    prepared: &PreparedModule,
    config: &VmConfig,
    sink: &mut S,
) -> Result<Outcome, VmError> {
    run_prepared_observed(prepared, config, sink, &mut NoMetrics)
}

/// [`run_prepared`] with a per-opcode dispatch-profile sink. See
/// [`crate::profile`] for the recording contract.
///
/// # Panics
///
/// Panics if `config.cost` differs from the preparation cost model.
///
/// # Errors
///
/// Returns a [`VmError`] on any runtime trap, exactly as [`run`] does.
pub fn run_prepared_profiled<P: ProfileSink>(
    prepared: &PreparedModule,
    config: &VmConfig,
    profile: &mut P,
) -> Result<Outcome, VmError> {
    run_prepared_observed(prepared, config, &mut NoTrace, profile)
}

/// [`run_prepared`] with both observers: a burst-trace sink and a
/// dispatch-profile sink, each independently monomorphized ([`NoTrace`] /
/// [`NoMetrics`] compile their recording sites away).
///
/// # Panics
///
/// Panics if `config.cost` differs from the preparation cost model.
///
/// # Errors
///
/// Returns a [`VmError`] on any runtime trap, exactly as [`run`] does.
pub fn run_prepared_observed<S: TraceSink, P: ProfileSink>(
    prepared: &PreparedModule,
    config: &VmConfig,
    sink: &mut S,
    profile: &mut P,
) -> Result<Outcome, VmError> {
    // The default control is the recording-free round-robin fast path —
    // this call adds nothing to the plain hot loop.
    let mut sched = SchedControl::default();
    run_prepared_sched(prepared, config, sink, profile, &mut sched)
}

/// [`run_prepared_observed`] with an explicit scheduling control: a
/// [`SchedControl`] selecting the policy (round-robin, seeded-random or
/// PCT), replaying a recorded [`crate::ScheduleTrace`], or following a DFS
/// choice prefix. See [`crate::sched`] for the scheduling contract; the
/// recorded trace stays in `sched` after the run.
///
/// # Panics
///
/// Panics if `config.cost` differs from the preparation cost model, or if
/// a replaying control diverges from its trace (impossible when replaying
/// a trace recorded from the same program and config).
///
/// # Errors
///
/// Returns a [`VmError`] on any runtime trap, exactly as [`run`] does.
pub fn run_prepared_sched<S: TraceSink, P: ProfileSink>(
    prepared: &PreparedModule,
    config: &VmConfig,
    sink: &mut S,
    profile: &mut P,
    sched: &mut SchedControl,
) -> Result<Outcome, VmError> {
    assert_eq!(
        &config.cost,
        prepared.cost(),
        "run_prepared: config cost model differs from the preparation cost model"
    );
    let mut machine = Machine::new(prepared, config, sink, profile, sched);
    let result = machine.run_to_completion();
    if P::ENABLED {
        machine.fold_profile(result.as_ref().err());
    }
    match result {
        Ok(()) => Ok(machine.into_outcome()),
        Err(kind) => Err(VmError {
            function: machine.current_function_name(),
            kind,
        }),
    }
}

struct Frame<'p> {
    func: FuncId,
    /// The function's decoded op arena, cached at call time so the fetch
    /// in `step()` is a single slice index.
    ops: &'p [Op],
    /// The function's offset into the module-wide slot space
    /// ([`PreparedFunction::slot_base`]), cached at call time so the
    /// profiled engine's counter bump is `slot_counts[base + ip]` with no
    /// per-dispatch function lookup.
    base: u32,
    /// Absolute index into the function's op arena.
    ip: usize,
    locals: Vec<Value>,
    ret_dst: Option<LocalId>,
    caller: Option<(FuncId, CallSiteId)>,
    /// Ball–Larus path register. `None` means "no path in progress": set
    /// by `PathStart`, consumed by `PathEnd`. The option makes sampled
    /// runs sound — a burst that enters duplicated code mid-path simply
    /// records nothing until the next path start.
    path_reg: Option<i64>,
}

#[derive(Copy, Clone, PartialEq, Eq, Debug)]
enum ThreadState {
    Runnable,
    Blocked(usize),
    Done,
}

struct Thread<'p> {
    frames: Vec<Frame<'p>>,
    state: ThreadState,
}

enum Step {
    Ran,
    SwitchRequested,
}

struct Machine<'p, 's, S: TraceSink, P: ProfileSink> {
    prepared: &'p PreparedModule,
    sink: &'s mut S,
    /// Per-opcode dispatch-profile sink; every recording site is guarded
    /// by `if P::ENABLED`, so [`NoMetrics`] compiles them away.
    psink: &'s mut P,
    /// Flow-entry deltas per module-wide arena slot, the profiled
    /// engine's entire hot-path cost: one `+1` per control transfer
    /// (branch, jump, call, check edge — 10–30% of dispatches), nothing
    /// at all on straight-line flow. Within a block, flow that enters at
    /// slot `e` executes every slot from `e` to the block's final op, so
    /// [`Machine::fold_profile`] reconstructs exact per-slot dispatch
    /// counts by prefix-summing the deltas block by block — after
    /// applying a `-1` cut where each still-live frame's flow stopped.
    /// Everything else an [`OpProfile`](crate::OpProfile) reports —
    /// opcode, width, cycles — is static per slot and folded in at the
    /// same time. Empty unless the profile sink is enabled.
    entry_deltas: Vec<i64>,
    /// Count of *firing* checks per slot — the one dispatch whose cycle
    /// charge is data-dependent (the sample-switch surcharge applies only
    /// when the check fires). Rarely touched: checks fire once per sample.
    /// Empty unless the profile sink is enabled.
    fire_counts: Vec<u64>,
    /// Clock snapshots at the previous sample, for burst lengths. Only
    /// maintained when the sink is enabled.
    last_sample_cycles: u64,
    last_sample_instructions: u64,
    sample_switch: u64,
    trigger: TriggerState,
    /// Whether the trigger observes the clock at all (only the timer-bit
    /// trigger does), letting `charge` skip the per-instruction tick.
    timer_active: bool,
    timeslice: u64,
    max_cycles: Option<u64>,
    max_stack: usize,
    /// Cooperative-cancellation token armed on this thread at machine
    /// construction ([`crate::cancel::arm`]), polled at block entries.
    /// `None` on clean runs, where the poll is a never-taken branch.
    cancel: Option<ArmedToken>,
    /// Deterministic cancellation point: raise [`TrapKind::Cancelled`] at
    /// the charge that takes the clock past this count, exactly where a
    /// `max_cycles` fuel budget of the same value would trap.
    cancel_after: Option<u64>,
    heap: Heap,
    threads: Vec<Thread<'p>>,
    current: usize,
    // Clock and scheduler bit.
    cycles: u64,
    next_switch: u64,
    switch_bit: bool,
    // Counters.
    instructions: u64,
    checks_executed: u64,
    samples_taken: u64,
    yields_executed: u64,
    entries_executed: u64,
    backedges_executed: u64,
    thread_switches: u64,
    output: Vec<i64>,
    profile: ProfileData,
    /// Reused buffer for call/spawn argument marshalling, so the hot call
    /// path doesn't allocate a fresh `Vec` per call. Taken at the start of
    /// a call arm and restored (cleared) after the frame push.
    arg_scratch: Vec<Value>,
    /// Scheduling seam: picks the next thread at every reschedule point.
    /// The default control is the historical round-robin scan with
    /// recording off, which costs nothing over the old hard-coded loop.
    sched: &'s mut SchedControl,
}

impl<'p, 's, S: TraceSink, P: ProfileSink> Machine<'p, 's, S, P> {
    fn new(
        prepared: &'p PreparedModule,
        config: &VmConfig,
        sink: &'s mut S,
        psink: &'s mut P,
        sched: &'s mut SchedControl,
    ) -> Self {
        let main = prepared.module().main();
        let main_frame = Frame {
            func: main,
            ops: &prepared.func(main).ops,
            base: prepared.func(main).slot_base,
            ip: 0,
            locals: vec![Value::Unit; prepared.func(main).num_locals],
            ret_dst: None,
            caller: None,
            path_reg: None,
        };
        Machine {
            prepared,
            sink,
            psink,
            entry_deltas: if P::ENABLED {
                let mut d = vec![0; prepared.total_slots()];
                // Main's frame enters at its arena's slot 0.
                if let Some(e) = d.get_mut(prepared.func(main).slot_base as usize) {
                    *e += 1;
                }
                d
            } else {
                Vec::new()
            },
            fire_counts: if P::ENABLED {
                vec![0; prepared.total_slots()]
            } else {
                Vec::new()
            },
            last_sample_cycles: 0,
            last_sample_instructions: 0,
            sample_switch: prepared.cost().sample_switch,
            trigger: TriggerState::new(config.trigger),
            timer_active: matches!(config.trigger, Trigger::TimerBit { .. }),
            timeslice: config.timeslice.max(1),
            max_cycles: config.limits.max_cycles,
            max_stack: config.limits.max_stack,
            cancel: cancel::armed_token(),
            cancel_after: cancel::armed_after(),
            heap: Heap::with_limit(config.limits.max_heap_words),
            threads: vec![Thread {
                frames: vec![main_frame],
                state: ThreadState::Runnable,
            }],
            current: 0,
            cycles: 0,
            next_switch: config.timeslice.max(1),
            switch_bit: false,
            instructions: 0,
            checks_executed: 0,
            samples_taken: 0,
            yields_executed: 0,
            entries_executed: 1, // main's method entry
            backedges_executed: 0,
            thread_switches: 0,
            output: Vec::new(),
            profile: ProfileData::new(),
            arg_scratch: Vec::new(),
            sched,
        }
    }

    fn into_outcome(self) -> Outcome {
        Outcome {
            output: self.output,
            cycles: self.cycles,
            instructions: self.instructions,
            profile: self.profile,
            checks_executed: self.checks_executed,
            samples_taken: self.samples_taken,
            yields_executed: self.yields_executed,
            entries_executed: self.entries_executed,
            backedges_executed: self.backedges_executed,
            thread_switches: self.thread_switches,
        }
    }

    fn current_function_name(&self) -> String {
        self.threads
            .get(self.current)
            .and_then(|t| t.frames.last())
            .map(|f| self.prepared.module().function(f.func).name().to_owned())
            .unwrap_or_else(|| "<no frame>".to_owned())
    }

    fn run_to_completion(&mut self) -> Result<(), TrapKind> {
        loop {
            match self.threads[self.current].state {
                ThreadState::Runnable => match self.step()? {
                    Step::Ran => {}
                    Step::SwitchRequested => {
                        if !self.reschedule(true) {
                            // No other runnable thread; stay on the current
                            // one if it can still run.
                            match self.threads[self.current].state {
                                ThreadState::Runnable => {}
                                ThreadState::Done => {
                                    if self.all_done() {
                                        return Ok(());
                                    }
                                    return Err(TrapKind::Deadlock);
                                }
                                ThreadState::Blocked(_) => return Err(TrapKind::Deadlock),
                            }
                        }
                    }
                },
                ThreadState::Done | ThreadState::Blocked(_) => {
                    if self.all_done() {
                        return Ok(());
                    }
                    if !self.reschedule(false) {
                        return Err(TrapKind::Deadlock);
                    }
                }
            }
        }
    }

    /// Folds the flow-entry deltas into the profile sink, called once
    /// after the run (only when `P::ENABLED`; the deltas are empty
    /// otherwise). This is what makes profiling cheap: the hot loop only
    /// counts control transfers, and everything per-dispatch is
    /// reconstructed here.
    ///
    /// Within a block, flow entering at slot `e` executes every op from
    /// `e` through the block's final op, so a prefix sum of the entry
    /// deltas — reset at each block boundary — yields each slot's exact
    /// dispatch count, once the places where flow *stopped short* are
    /// cut:
    ///
    /// * **Live frames.** Every frame still on a stack at the end of the
    ///   run stopped mid-block: at `ip` (the next op, not yet dispatched)
    ///   for every suspended frame, or past the attempted op for the
    ///   frame a trap unwound from. A `-1` at the stop slot cancels the
    ///   entry's contribution to the ops flow never reached.
    /// * **Blocking joins.** A join that blocks is re-dispatched on wake;
    ///   the blocking (rare) path pre-counts that extra dispatch of the
    ///   join slot alone, and the live-frame cut cancels it if the wake
    ///   never comes.
    ///
    /// Each slot's static metadata — opcode, width, and exact
    /// per-dispatch charge (`Op::cost` plus the mid-arm charges of
    /// [`OpKind::extra_cycles`]) — then turns counts into per-opcode
    /// totals. Two dynamic corrections close the gap to exactness: the
    /// per-slot firing counts (the sample-switch surcharge applies only
    /// when a check fires), and the trapping dispatch's charge shortfall
    /// (the statically attributed total minus the clock), subtracted from
    /// the slot the trap frame points at.
    ///
    /// The differential tests pin the result: per-opcode totals sum to
    /// the outcome's `cycles`/`instructions` exactly, traps included, and
    /// an unfused prepared profile equals the tree-walking engine's
    /// per-dispatch-recorded one.
    fn fold_profile(&mut self, trap: Option<&TrapKind>) {
        // A deadlock is declared between dispatches; every other trap
        // unwinds from a partially-executed op the current frame still
        // points at (the call arms re-point `ip` on a failed frame push).
        let mid_op = matches!(trap, Some(k) if !matches!(k, TrapKind::Deadlock));
        for (ti, t) in self.threads.iter().enumerate() {
            for (fi, fr) in t.frames.iter().enumerate() {
                let attempted = mid_op && ti == self.current && fi + 1 == t.frames.len();
                let cut = if attempted {
                    // The trapping op was dispatched; flow stopped just
                    // past it. If that is the block's end (or the arena's),
                    // the entry's contribution was fully realized — no cut.
                    let c = fr.ip + fr.ops[fr.ip].width as usize;
                    let starts = &self.prepared.func(fr.func).block_starts;
                    if c >= fr.ops.len() || starts.binary_search(&(c as u32)).is_ok() {
                        continue;
                    }
                    c
                } else {
                    fr.ip
                };
                if let Some(d) = self.entry_deltas.get_mut(fr.base as usize + cut) {
                    *d -= 1;
                }
            }
        }
        // Reconstruct per-slot dispatch counts: prefix-sum the deltas,
        // resetting at block boundaries.
        let mut counts = vec![0u64; self.entry_deltas.len()];
        for f in self.prepared.funcs() {
            let mut next_block = 1;
            let mut flow: i64 = 0;
            for i in 0..f.ops.len() {
                if f.block_starts.get(next_block) == Some(&(i as u32)) {
                    flow = 0;
                    next_block += 1;
                }
                let slot = f.slot_base as usize + i;
                flow += self.entry_deltas[slot];
                debug_assert!(flow >= 0, "negative reconstructed dispatch count");
                counts[slot] = flow.max(0) as u64;
            }
        }
        let trap_frame = if mid_op {
            self.threads
                .get(self.current)
                .and_then(|t| t.frames.last())
                .map(|f| (f.base as usize + f.ip, &f.ops[f.ip]))
        } else {
            None
        };
        let trap_slot = trap_frame.map(|(slot, _)| slot);
        let mut attributed: u64 = 0;
        for f in self.prepared.funcs() {
            for (i, op) in f.ops.iter().enumerate() {
                if matches!(op.kind, OpKind::Gap) {
                    // Interior slots of a fused group carry the leader's
                    // flow count but are never dispatched.
                    continue;
                }
                let slot = f.slot_base as usize + i;
                let n = counts[slot];
                if n > 0 {
                    attributed += n * (op.cost + op.kind.extra_cycles())
                        + self.fire_counts[slot] * self.sample_switch;
                }
            }
        }
        let shortfall = attributed.saturating_sub(self.cycles);
        debug_assert!(
            mid_op || shortfall == 0,
            "completed run must be exactly attributed (over by {shortfall})"
        );
        debug_assert!(attributed >= self.cycles, "attribution fell short");
        // How much of the trapping dispatch never ran under the unfused
        // schedule. A fused group's charge is a sequence of quanta, each
        // folding one or more source instructions; the shortfall is
        // exactly the sum of the quanta the trap left un-applied, so
        // unwinding them recovers the instructions an unfused run would
        // not have dispatched. A budget trap additionally needs the
        // *failing* quantum split: its whole sum hit the clock at once,
        // but the unfused schedule would have charged per component and
        // stopped at the first one to cross the budget — components past
        // that point contribute neither instructions nor cycles
        // (`trap_phantom`). Both corrections come off the trap slot so
        // fused profiles equal unfused and naive ones exactly, traps
        // included.
        let (trap_uncounted, trap_phantom) = trap_frame.map_or((0, 0), |(_, op)| {
            let quanta = op.charge_quanta(self.prepared.cost());
            let mut remaining = shortfall;
            let mut uncounted = 0u64;
            let mut qi = quanta.len();
            while remaining > 0 {
                qi -= 1;
                let qsum: u64 = quanta[qi].iter().sum();
                debug_assert!(remaining >= qsum, "shortfall must unwind whole quanta");
                remaining = remaining.saturating_sub(qsum);
                uncounted += quanta[qi].len() as u64;
            }
            let mut phantom = 0u64;
            // The budget the trapping charge crossed: a fuel trap's own
            // limit, or the deterministic cancellation point (which
            // shares the fuel predicate in `charge_cycles`). An epoch
            // cancellation carries no budget — it fires at a block entry
            // after the transfer op charged in full, so the shortfall is
            // zero, and when a `cancel_after` happens to be armed too the
            // clock still sits at or below it, making the replay a no-op.
            let budget = match trap {
                Some(TrapKind::FuelExhausted(max)) => Some(*max),
                Some(TrapKind::Cancelled) => self.cancel_after,
                _ => None,
            };
            if let Some(max) = budget {
                // Quantum `qi - 1` is the charge that trapped (fuel traps
                // happen inside `charge_cycles`, and the machine stops on
                // the spot). Replay its components against the clock at
                // its start; the component that crosses the budget is the
                // unfused schedule's last dispatch.
                if qi > 0 && quanta[qi - 1].len() > 1 {
                    let q = &quanta[qi - 1];
                    let mut clock = self.cycles - q.iter().sum::<u64>();
                    let mut crossed = false;
                    for &c in q {
                        if crossed {
                            uncounted += 1;
                            phantom += c;
                        } else {
                            clock += c;
                            crossed = clock > max;
                        }
                    }
                }
            }
            (uncounted, phantom)
        });
        for f in self.prepared.funcs() {
            for (i, op) in f.ops.iter().enumerate() {
                if matches!(op.kind, OpKind::Gap) {
                    continue;
                }
                let slot = f.slot_base as usize + i;
                let n = counts[slot];
                if n == 0 {
                    continue;
                }
                let mut cycles = n * (op.cost + op.kind.extra_cycles())
                    + self.fire_counts[slot] * self.sample_switch;
                let mut instructions = n * u64::from(op.width);
                if trap_slot == Some(slot) {
                    cycles -= shortfall + trap_phantom;
                    instructions -= trap_uncounted;
                }
                self.psink
                    .record_dispatches(op.kind.opcode(), n, instructions, cycles);
            }
        }
    }

    fn all_done(&self) -> bool {
        self.threads.iter().all(|t| t.state == ThreadState::Done)
    }

    /// Rotates to the next runnable thread per the scheduling policy
    /// (unblocking joiners whose target finished). Returns `false` if no
    /// *other* thread could be scheduled (`require_other = true`) or no
    /// thread at all is runnable.
    ///
    /// Joiners whose target has finished are woken *before* the policy
    /// picks, so every policy sees the same candidate set. For the default
    /// round-robin policy this is indistinguishable from the historical
    /// wake-during-scan: the first runnable thread in scan order is
    /// unchanged, and a thread woken beyond it stays runnable either way
    /// until the scan next reaches it. (The current thread can never be
    /// blocked on a finished target here: a `Join` only blocks on a
    /// not-yet-done thread and nothing else runs before the reschedule.)
    fn reschedule(&mut self, require_other: bool) -> bool {
        let n = self.threads.len();
        for i in 0..n {
            if let ThreadState::Blocked(target) = self.threads[i].state {
                if self.threads[target].state == ThreadState::Done {
                    self.threads[i].state = ThreadState::Runnable;
                }
            }
        }
        let threads = &self.threads;
        let sched = &mut *self.sched;
        match sched.pick(self.current, require_other, n, &|idx| {
            threads[idx].state == ThreadState::Runnable
        }) {
            Some(idx) => {
                if idx != self.current {
                    self.thread_switches += 1;
                }
                self.current = idx;
                true
            }
            None => false,
        }
    }

    /// Charges a (possibly fused) op: `width` source instructions and `c`
    /// cycles. A fused group has no observation point between its
    /// components — `Check` and `Yield` never fuse — so counting the whole
    /// group here is indistinguishable from per-op counting.
    #[inline]
    fn charge(&mut self, c: u64, width: u32) -> Result<(), TrapKind> {
        self.instructions += u64::from(width);
        self.charge_cycles(c)
    }

    /// The cycle half of [`Machine::charge`]: clock advance, timer tick,
    /// threadswitch catch-up, fuel check. Also called mid-arm by
    /// `BrCmp`/`BrCmpImm` to charge the branch after the compare executed,
    /// reproducing the unfused charge/execute interleaving exactly.
    #[inline]
    fn charge_cycles(&mut self, c: u64) -> Result<(), TrapKind> {
        self.cycles += c;
        if self.timer_active {
            // `on_tick` is a no-op for every non-timer trigger; skipping
            // the call keeps the branch out of the untimed hot path.
            self.trigger.on_tick(self.cycles);
        }
        if self.cycles >= self.next_switch {
            self.switch_bit = true;
            // Catch up in one division rather than one loop iteration per
            // missed timeslice: a long simulated gap must not spin.
            let behind = self.cycles - self.next_switch;
            self.next_switch = self
                .next_switch
                .saturating_add((behind / self.timeslice + 1).saturating_mul(self.timeslice));
        }
        if let Some(max) = self.max_cycles {
            if self.cycles > max {
                return Err(TrapKind::FuelExhausted(max));
            }
        }
        // The deterministic cancellation hook shares the fuel predicate
        // (checked second, so a tied budget wins) — cancellation at cycle
        // K stops at exactly the dispatch a `max_cycles = K` trap would.
        if let Some(k) = self.cancel_after {
            if self.cycles > k {
                return Err(TrapKind::Cancelled);
            }
        }
        Ok(())
    }

    #[inline]
    fn frame(&self) -> &Frame<'p> {
        self.threads[self.current]
            .frames
            .last()
            .expect("runnable thread has a frame")
    }

    #[inline]
    fn frame_mut(&mut self) -> &mut Frame<'p> {
        self.threads[self.current]
            .frames
            .last_mut()
            .expect("runnable thread has a frame")
    }

    #[inline]
    fn get(&self, l: LocalId) -> Value {
        self.frame().locals[l.index()]
    }

    #[inline]
    fn set(&mut self, l: LocalId, v: Value) {
        self.frame_mut().locals[l.index()] = v;
    }

    #[inline]
    fn advance(&mut self) {
        self.frame_mut().ip += 1;
    }

    /// Records a burst boundary at a firing check. Only reachable from
    /// `if S::ENABLED` guards: the whole function compiles away when the
    /// sink is [`NoTrace`].
    #[cold]
    fn record_sample(&mut self, thread: usize, func: FuncId, check_ip: u32, backedge: bool) {
        self.sink.record(BurstRecord {
            thread: thread as u32,
            func: func.index() as u32,
            check_ip,
            backedge,
            len_instructions: self.instructions - self.last_sample_instructions,
            len_cycles: self.cycles - self.last_sample_cycles,
        });
        self.last_sample_instructions = self.instructions;
        self.last_sample_cycles = self.cycles;
    }

    /// Transfers control to a pre-resolved arena index, bumping the
    /// Property 1 accounting when the edge was classified as a backedge at
    /// prepare time.
    ///
    /// # Errors
    ///
    /// Returns [`TrapKind::Cancelled`] when an armed token fired; see
    /// [`Machine::enter`].
    #[inline]
    fn goto(&mut self, target: u32, backedge: bool) -> Result<(), TrapKind> {
        if backedge {
            self.backedges_executed += 1;
        }
        self.enter(target)
    }

    /// Lands the current frame at `target`, counting the flow entry when
    /// the profile sink is enabled (when it isn't, this is just the `ip`
    /// store). Every control-transfer arm funnels through here or
    /// [`Machine::goto`]; straight-line advancement does not, which is
    /// what keeps profiling off the per-dispatch path.
    ///
    /// # Errors
    ///
    /// This funnel is also the cancellation poll: block entry is the one
    /// point every divergent program must pass infinitely often (straight
    /// -line flow is finite and recursion is bounded by `max_stack`), so
    /// polling here — and nowhere else — guarantees a cancelled run traps
    /// at its next control transfer. The poll comes first: a cancelled
    /// transfer records no flow entry and leaves `ip` on the fully
    /// executed, fully charged transfer op, which is exactly the state
    /// [`Machine::fold_profile`]'s attempted-frame cut accounts for.
    #[inline]
    fn enter(&mut self, target: u32) -> Result<(), TrapKind> {
        if let Some(t) = &self.cancel {
            if t.fired() {
                return Err(TrapKind::Cancelled);
            }
        }
        if P::ENABLED {
            let base = self.frame().base;
            if let Some(d) = self.entry_deltas.get_mut(base as usize + target as usize) {
                *d += 1;
            }
        }
        self.frame_mut().ip = target as usize;
        Ok(())
    }

    fn push_frame(
        &mut self,
        callee: FuncId,
        args: &[Value],
        ret_dst: Option<LocalId>,
        caller: Option<(FuncId, CallSiteId)>,
        thread: usize,
    ) -> Result<(), TrapKind> {
        if self.threads[thread].frames.len() >= self.max_stack {
            return Err(TrapKind::StackOverflow(self.max_stack));
        }
        let prepared: &'p PreparedModule = self.prepared;
        let f = prepared.func(callee);
        debug_assert_eq!(f.arity, args.len());
        if P::ENABLED {
            // The new frame enters the callee's arena at slot 0.
            if let Some(d) = self.entry_deltas.get_mut(f.slot_base as usize) {
                *d += 1;
            }
        }
        let mut locals = vec![Value::Unit; f.num_locals];
        locals[..args.len()].copy_from_slice(args);
        self.threads[thread].frames.push(Frame {
            func: callee,
            ops: &f.ops,
            base: f.slot_base,
            ip: 0,
            locals,
            ret_dst,
            caller,
            path_reg: None,
        });
        self.entries_executed += 1;
        Ok(())
    }

    fn step(&mut self) -> Result<Step, TrapKind> {
        let cur = self.current;
        let frame = self.threads[cur]
            .frames
            .last()
            .expect("runnable thread has a frame");
        let func_id = frame.func;
        // The op borrow comes through the frame's cached `&'p [Op]` slice,
        // leaving `self` free for mutation during execution.
        let ops = frame.ops;
        let op = &ops[frame.ip];
        let w = op.width as usize;
        self.charge(op.cost, op.width)?;
        // Hot arms take one `last_mut` borrow of the current frame, index
        // locals directly and advance `ip` inline; the heap, the dispatch
        // tables and the counters live in disjoint fields of `self`, so
        // they stay reachable while the frame borrow is live.
        match &op.kind {
            OpKind::Const { dst, value } => {
                let f = self.threads[cur].frames.last_mut().expect("frame");
                f.locals[dst.index()] = *value;
                f.ip += 1;
            }
            OpKind::Move { dst, src } => {
                let f = self.threads[cur].frames.last_mut().expect("frame");
                f.locals[dst.index()] = f.locals[src.index()];
                f.ip += 1;
            }
            OpKind::Un { op, dst, src } => {
                let f = self.threads[cur].frames.last_mut().expect("frame");
                f.locals[dst.index()] = Value::unary(*op, f.locals[src.index()])?;
                f.ip += 1;
            }
            OpKind::Bin { op, dst, lhs, rhs } => {
                let f = self.threads[cur].frames.last_mut().expect("frame");
                f.locals[dst.index()] =
                    Value::binary(*op, f.locals[lhs.index()], f.locals[rhs.index()])?;
                f.ip += 1;
            }
            OpKind::New {
                dst,
                class,
                num_fields,
            } => {
                let v = self.heap.alloc_object(*class, *num_fields)?;
                let f = self.threads[cur].frames.last_mut().expect("frame");
                f.locals[dst.index()] = v;
                f.ip += 1;
            }
            OpKind::GetField { dst, obj, field } => {
                let f = self.threads[cur].frames.last_mut().expect("frame");
                let object = self.heap.object(f.locals[obj.index()])?;
                let offset = self
                    .prepared
                    .field_offset(object.class, *field)
                    .ok_or_else(|| {
                        TrapKind::NoSuchField(self.prepared.module().field_name(*field).to_owned())
                    })?;
                f.locals[dst.index()] = object.fields[offset as usize];
                f.ip += 1;
            }
            OpKind::SetField { obj, field, src } => {
                let f = self.threads[cur].frames.last_mut().expect("frame");
                let o = f.locals[obj.index()];
                let v = f.locals[src.index()];
                let class = self.heap.object(o)?.class;
                let offset = self.prepared.field_offset(class, *field).ok_or_else(|| {
                    TrapKind::NoSuchField(self.prepared.module().field_name(*field).to_owned())
                })?;
                self.heap.object_mut(o)?.fields[offset as usize] = v;
                f.ip += 1;
            }
            OpKind::GetFieldStatic { dst, obj, offset } => {
                let f = self.threads[cur].frames.last_mut().expect("frame");
                let object = self.heap.object(f.locals[obj.index()])?;
                f.locals[dst.index()] = object.fields[*offset as usize];
                f.ip += 1;
            }
            OpKind::SetFieldStatic { obj, offset, src } => {
                let f = self.threads[cur].frames.last_mut().expect("frame");
                let o = f.locals[obj.index()];
                let v = f.locals[src.index()];
                self.heap.object_mut(o)?.fields[*offset as usize] = v;
                f.ip += 1;
            }
            OpKind::NewArray { dst, len } => {
                let f = self.threads[cur].frames.last_mut().expect("frame");
                let n = f.locals[len.index()].as_i64()?;
                f.locals[dst.index()] = self.heap.alloc_array(n)?;
                f.ip += 1;
            }
            OpKind::ArrayGet { dst, arr, idx } => {
                let f = self.threads[cur].frames.last_mut().expect("frame");
                let i = f.locals[idx.index()].as_i64()?;
                let v = self.heap.array_get(f.locals[arr.index()], i)?;
                f.locals[dst.index()] = Value::I64(v);
                f.ip += 1;
            }
            OpKind::ArraySet { arr, idx, src } => {
                let f = self.threads[cur].frames.last_mut().expect("frame");
                let a = f.locals[arr.index()];
                let i = f.locals[idx.index()].as_i64()?;
                let v = f.locals[src.index()].as_i64()?;
                self.heap.array_set(a, i, v)?;
                f.ip += 1;
            }
            OpKind::ArrayLen { dst, arr } => {
                let f = self.threads[cur].frames.last_mut().expect("frame");
                let n = self.heap.array_len(f.locals[arr.index()])?;
                f.locals[dst.index()] = Value::I64(n);
                f.ip += 1;
            }
            OpKind::Call {
                dst,
                callee,
                args,
                site,
            } => {
                let mut vals = std::mem::take(&mut self.arg_scratch);
                let f = self.threads[cur].frames.last_mut().expect("frame");
                vals.extend(args.iter().map(|a| f.locals[a.index()]));
                f.ip += 1;
                let r = self.push_frame(*callee, &vals, *dst, Some((func_id, *site)), cur);
                vals.clear();
                self.arg_scratch = vals;
                if r.is_err() {
                    // The call never entered: point `ip` back at the call
                    // op so the trap is attributed to the op attempted.
                    self.frame_mut().ip -= 1;
                }
                r?;
            }
            OpKind::CallMethod {
                dst,
                obj,
                method,
                args,
                site,
            } => {
                let f = self.threads[cur].frames.last_mut().expect("frame");
                let o = f.locals[obj.index()];
                let class = self.heap.object(o)?.class;
                let callee = self.prepared.method_impl(class, *method).ok_or_else(|| {
                    TrapKind::NoSuchMethod(self.prepared.module().method_name(*method).to_owned())
                })?;
                let expected = self.prepared.func(callee).arity;
                if expected != args.len() + 1 {
                    return Err(TrapKind::ArityMismatch {
                        method: self.prepared.module().function(callee).name().to_owned(),
                        given: args.len() + 1,
                        expected,
                    });
                }
                let mut vals = std::mem::take(&mut self.arg_scratch);
                let f = self.threads[cur].frames.last_mut().expect("frame");
                vals.push(o);
                vals.extend(args.iter().map(|a| f.locals[a.index()]));
                f.ip += 1;
                let r = self.push_frame(callee, &vals, *dst, Some((func_id, *site)), cur);
                vals.clear();
                self.arg_scratch = vals;
                if r.is_err() {
                    // See `OpKind::Call`: re-point `ip` at the attempted
                    // call.
                    self.frame_mut().ip -= 1;
                }
                r?;
            }
            OpKind::CallMethodStatic {
                dst,
                obj,
                callee,
                args,
                site,
            } => {
                let f = self.threads[cur].frames.last_mut().expect("frame");
                let o = f.locals[obj.index()];
                // The method target and arity were verified at prepare
                // time; the receiver must still be a live object so null
                // and type traps match the dynamic path.
                self.heap.object(o)?;
                let mut vals = std::mem::take(&mut self.arg_scratch);
                let f = self.threads[cur].frames.last_mut().expect("frame");
                vals.push(o);
                vals.extend(args.iter().map(|a| f.locals[a.index()]));
                f.ip += 1;
                let r = self.push_frame(*callee, &vals, *dst, Some((func_id, *site)), cur);
                vals.clear();
                self.arg_scratch = vals;
                if r.is_err() {
                    // See `OpKind::Call`: re-point `ip` at the attempted
                    // call.
                    self.frame_mut().ip -= 1;
                }
                r?;
            }
            OpKind::Print { src } => {
                let f = self.threads[cur].frames.last_mut().expect("frame");
                let n = match f.locals[src.index()] {
                    Value::I64(n) => n,
                    Value::Bool(b) => i64::from(b),
                    other => {
                        return Err(TrapKind::TypeError {
                            expected: "printable value",
                            found: other.kind_name(),
                        })
                    }
                };
                self.output.push(n);
                f.ip += 1;
            }
            OpKind::Spawn { dst, callee, args } => {
                let mut vals = std::mem::take(&mut self.arg_scratch);
                {
                    let f = self.threads[cur].frames.last().expect("frame");
                    vals.extend(args.iter().map(|a| f.locals[a.index()]));
                }
                let tid = self.threads.len();
                self.threads.push(Thread {
                    frames: Vec::new(),
                    state: ThreadState::Runnable,
                });
                let r = self.push_frame(*callee, &vals, None, None, tid);
                vals.clear();
                self.arg_scratch = vals;
                r?;
                self.set(*dst, Value::Thread(tid as u32));
                self.advance();
            }
            OpKind::Join { thread } => {
                let t = match self.get(*thread) {
                    Value::Thread(t) => t as usize,
                    other => {
                        return Err(TrapKind::TypeError {
                            expected: "thread handle",
                            found: other.kind_name(),
                        })
                    }
                };
                if self.threads[t].state != ThreadState::Done {
                    self.threads[cur].state = ThreadState::Blocked(t);
                    if P::ENABLED {
                        // The join re-dispatches when unblocked: count the
                        // extra dispatch now, confined to this slot (`-1`
                        // right after keeps the rest of the block at one
                        // execution per entry). If the wake never comes,
                        // the end-of-run cut at this frame's `ip` cancels
                        // the prediction.
                        let fr = self.threads[cur].frames.last().expect("frame");
                        let slot = fr.base as usize + fr.ip;
                        if let Some(d) = self.entry_deltas.get_mut(slot) {
                            *d += 1;
                        }
                        if let Some(d) = self.entry_deltas.get_mut(slot + 1) {
                            *d -= 1;
                        }
                    }
                    // Do not advance: the join re-executes when unblocked.
                    return Ok(Step::SwitchRequested);
                }
                self.advance();
            }
            OpKind::Yield => {
                self.yields_executed += 1;
                self.advance();
                if self.switch_bit {
                    self.switch_bit = false;
                    return Ok(Step::SwitchRequested);
                }
            }
            OpKind::Busy => {
                // The cost was already charged; nothing else happens.
                self.advance();
            }
            OpKind::CallEdge => {
                // Examine the call stack (paper §4.2): the caller and the
                // call site were stashed in the frame at call time.
                let f = self.threads[cur].frames.last_mut().expect("frame");
                if let Some((caller, site)) = f.caller {
                    self.profile.record_call_edge(caller, site, func_id);
                }
                f.ip += 1;
            }
            OpKind::FieldAccessProf { obj, field, write } => {
                let f = self.threads[cur].frames.last_mut().expect("frame");
                let class = self.heap.object(f.locals[obj.index()])?.class;
                self.profile.record_field_access(class, *field, *write);
                f.ip += 1;
            }
            OpKind::BlockCount { block } => {
                self.profile.record_block(func_id, *block);
                self.advance();
            }
            OpKind::EdgeCount { from, to } => {
                self.profile.record_edge(func_id, *from, *to);
                self.advance();
            }
            OpKind::PathStart { value } => {
                let f = self.threads[cur].frames.last_mut().expect("frame");
                f.path_reg = Some(*value);
                f.ip += 1;
            }
            OpKind::PathIncr { delta } => {
                // `delta` may be the pre-folded sum of a fused run; the
                // width then advances past the whole run's slots.
                let f = self.threads[cur].frames.last_mut().expect("frame");
                if let Some(r) = f.path_reg.as_mut() {
                    *r += *delta;
                }
                f.ip += w;
            }
            OpKind::PathEnd { site } => {
                let f = self.threads[cur].frames.last_mut().expect("frame");
                if let Some(id) = f.path_reg.take() {
                    self.profile.record_path(func_id, *site, id);
                }
                f.ip += 1;
            }
            OpKind::ValueProfile { local, site } => {
                let v = match self.get(*local) {
                    Value::I64(n) => n,
                    Value::Bool(b) => i64::from(b),
                    // Reference values are profiled by identity.
                    Value::Obj(h) | Value::Arr(h) | Value::Thread(h) => i64::from(h),
                    Value::Null => -1,
                    Value::Unit => 0,
                };
                self.profile.record_value(func_id, *site, v);
                self.advance();
            }
            // Fused superinstructions: each arm replays its group's
            // original effects in order under one dispatch. The group cost
            // was charged up front (sound because only the final effectful
            // component can trap); `BrCmp`/`BrCmpImm` charge the branch
            // half mid-arm to keep fuel traps on the unfused schedule.
            OpKind::BinImm {
                op,
                dst,
                lhs,
                rhs,
                tmp,
                imm,
            } => {
                let f = self.threads[cur].frames.last_mut().expect("frame");
                f.locals[tmp.index()] = *imm;
                f.locals[dst.index()] =
                    Value::binary(*op, f.locals[lhs.index()], f.locals[rhs.index()])?;
                f.ip += w;
            }
            OpKind::ArrayGetImm { dst, arr, tmp, idx } => {
                let f = self.threads[cur].frames.last_mut().expect("frame");
                f.locals[tmp.index()] = Value::I64(*idx);
                let v = self.heap.array_get(f.locals[arr.index()], *idx)?;
                f.locals[dst.index()] = Value::I64(v);
                f.ip += w;
            }
            OpKind::ArraySetImm { arr, tmp, idx, src } => {
                let f = self.threads[cur].frames.last_mut().expect("frame");
                f.locals[tmp.index()] = Value::I64(*idx);
                let a = f.locals[arr.index()];
                let v = f.locals[src.index()].as_i64()?;
                self.heap.array_set(a, *idx, v)?;
                f.ip += w;
            }
            OpKind::ArraySetImm2 {
                arr,
                tmp,
                idx,
                src_tmp,
                src,
            } => {
                let f = self.threads[cur].frames.last_mut().expect("frame");
                f.locals[tmp.index()] = Value::I64(*idx);
                f.locals[src_tmp.index()] = *src;
                let a = f.locals[arr.index()];
                let v = src.as_i64()?;
                self.heap.array_set(a, *idx, v)?;
                f.ip += w;
            }
            OpKind::GetFieldBin {
                obj,
                offset,
                tmp,
                op,
                dst,
                lhs,
                rhs,
                extra,
            } => {
                let f = self.threads[cur].frames.last_mut().expect("frame");
                let v = self.heap.object(f.locals[obj.index()])?.fields[*offset as usize];
                f.locals[tmp.index()] = v;
                self.charge_cycles(*extra)?;
                let f = self.threads[cur].frames.last_mut().expect("frame");
                f.locals[dst.index()] =
                    Value::binary(*op, f.locals[lhs.index()], f.locals[rhs.index()])?;
                f.ip += w;
            }
            OpKind::BinSetField {
                op,
                dst,
                lhs,
                rhs,
                obj,
                offset,
                extra,
            } => {
                let f = self.threads[cur].frames.last_mut().expect("frame");
                let v = Value::binary(*op, f.locals[lhs.index()], f.locals[rhs.index()])?;
                f.locals[dst.index()] = v;
                self.charge_cycles(*extra)?;
                let f = self.threads[cur].frames.last_mut().expect("frame");
                let o = f.locals[obj.index()];
                self.heap.object_mut(o)?.fields[*offset as usize] = v;
                f.ip += w;
            }
            OpKind::BinImmSetField {
                op,
                dst,
                lhs,
                rhs,
                tmp,
                imm,
                obj,
                offset,
                extra,
            } => {
                let f = self.threads[cur].frames.last_mut().expect("frame");
                f.locals[tmp.index()] = *imm;
                let v = Value::binary(*op, f.locals[lhs.index()], f.locals[rhs.index()])?;
                f.locals[dst.index()] = v;
                self.charge_cycles(*extra)?;
                let f = self.threads[cur].frames.last_mut().expect("frame");
                let o = f.locals[obj.index()];
                self.heap.object_mut(o)?.fields[*offset as usize] = v;
                f.ip += w;
            }
            OpKind::GetFieldBinImm {
                obj,
                offset,
                tmp,
                ctmp,
                imm,
                op,
                dst,
                lhs,
                rhs,
                extra,
            } => {
                let f = self.threads[cur].frames.last_mut().expect("frame");
                let v = self.heap.object(f.locals[obj.index()])?.fields[*offset as usize];
                f.locals[tmp.index()] = v;
                self.charge_cycles(*extra)?;
                let f = self.threads[cur].frames.last_mut().expect("frame");
                f.locals[ctmp.index()] = *imm;
                f.locals[dst.index()] =
                    Value::binary(*op, f.locals[lhs.index()], f.locals[rhs.index()])?;
                f.ip += w;
            }
            OpKind::GetFieldBinImmSetField {
                obj,
                offset,
                tmp,
                ctmp,
                imm,
                op,
                dst,
                lhs,
                rhs,
                sobj,
                soffset,
                extra,
                extra2,
            } => {
                let f = self.threads[cur].frames.last_mut().expect("frame");
                let v = self.heap.object(f.locals[obj.index()])?.fields[*offset as usize];
                f.locals[tmp.index()] = v;
                self.charge_cycles(*extra)?;
                let f = self.threads[cur].frames.last_mut().expect("frame");
                f.locals[ctmp.index()] = *imm;
                let v = Value::binary(*op, f.locals[lhs.index()], f.locals[rhs.index()])?;
                f.locals[dst.index()] = v;
                self.charge_cycles(*extra2)?;
                let f = self.threads[cur].frames.last_mut().expect("frame");
                let o = f.locals[sobj.index()];
                self.heap.object_mut(o)?.fields[*soffset as usize] = v;
                f.ip += w;
            }
            OpKind::ConstSetField {
                tmp,
                imm,
                obj,
                offset,
            } => {
                let f = self.threads[cur].frames.last_mut().expect("frame");
                f.locals[tmp.index()] = *imm;
                let o = f.locals[obj.index()];
                self.heap.object_mut(o)?.fields[*offset as usize] = *imm;
                f.ip += w;
            }
            OpKind::GetFieldBrCmp {
                obj,
                offset,
                tmp,
                op,
                dst,
                lhs,
                rhs,
                extra,
                branch,
                t,
                f: f_target,
            } => {
                let f = self.threads[cur].frames.last_mut().expect("frame");
                let v = self.heap.object(f.locals[obj.index()])?.fields[*offset as usize];
                f.locals[tmp.index()] = v;
                self.charge_cycles(*extra)?;
                let f = self.threads[cur].frames.last_mut().expect("frame");
                let v = Value::binary(*op, f.locals[lhs.index()], f.locals[rhs.index()])?;
                f.locals[dst.index()] = v;
                self.charge_cycles(*branch)?;
                // A successful comparison always yields a bool, so this is
                // the `as_bool` of the unfused branch, trap-free.
                let taken = v == Value::Bool(true);
                self.enter(if taken { *t } else { *f_target })?;
            }
            OpKind::GetFieldArrayGet {
                obj,
                offset,
                tmp,
                dst,
                arr,
                extra,
            } => {
                let f = self.threads[cur].frames.last_mut().expect("frame");
                let v = self.heap.object(f.locals[obj.index()])?.fields[*offset as usize];
                f.locals[tmp.index()] = v;
                self.charge_cycles(*extra)?;
                let f = self.threads[cur].frames.last_mut().expect("frame");
                let i = f.locals[tmp.index()].as_i64()?;
                let v = self.heap.array_get(f.locals[arr.index()], i)?;
                f.locals[dst.index()] = Value::I64(v);
                f.ip += w;
            }
            OpKind::GetFieldArraySet {
                obj,
                offset,
                tmp,
                arr,
                src,
                extra,
            } => {
                let f = self.threads[cur].frames.last_mut().expect("frame");
                let v = self.heap.object(f.locals[obj.index()])?.fields[*offset as usize];
                f.locals[tmp.index()] = v;
                self.charge_cycles(*extra)?;
                let f = self.threads[cur].frames.last_mut().expect("frame");
                let a = f.locals[arr.index()];
                let i = f.locals[tmp.index()].as_i64()?;
                let v = f.locals[src.index()].as_i64()?;
                self.heap.array_set(a, i, v)?;
                f.ip += w;
            }
            OpKind::MoveRun { moves } => {
                let f = self.threads[cur].frames.last_mut().expect("frame");
                for (dst, src) in moves.iter() {
                    f.locals[dst.index()] = f.locals[src.index()];
                }
                f.ip += w;
            }
            OpKind::BrCmp {
                op,
                dst,
                lhs,
                rhs,
                extra,
                t,
                f: f_target,
            } => {
                let f = self.threads[cur].frames.last_mut().expect("frame");
                let v = Value::binary(*op, f.locals[lhs.index()], f.locals[rhs.index()])?;
                f.locals[dst.index()] = v;
                self.charge_cycles(*extra)?;
                // A successful comparison always yields a bool, so this is
                // the `as_bool` of the unfused branch, trap-free.
                let taken = v == Value::Bool(true);
                self.enter(if taken { *t } else { *f_target })?;
            }
            OpKind::BrCmpImm {
                op,
                dst,
                lhs,
                rhs,
                tmp,
                imm,
                extra,
                t,
                f: f_target,
            } => {
                let f = self.threads[cur].frames.last_mut().expect("frame");
                f.locals[tmp.index()] = *imm;
                let v = Value::binary(*op, f.locals[lhs.index()], f.locals[rhs.index()])?;
                f.locals[dst.index()] = v;
                self.charge_cycles(*extra)?;
                let taken = v == Value::Bool(true);
                self.enter(if taken { *t } else { *f_target })?;
            }
            OpKind::JumpInstr { target, effects } => {
                let caller = self.frame().caller;
                self.enter(*target)?;
                for e in effects.iter() {
                    match e {
                        InstrEffect::CallEdge => {
                            if let Some((caller, site)) = caller {
                                self.profile.record_call_edge(caller, site, func_id);
                            }
                        }
                        InstrEffect::BlockCount(b) => self.profile.record_block(func_id, *b),
                        InstrEffect::EdgeCount(from, to) => {
                            self.profile.record_edge(func_id, *from, *to);
                        }
                    }
                }
            }
            OpKind::Guided { steps, .. } => {
                // The generalized profile-guided group: charge and execute
                // per component (the main-loop charge covered `steps[0]`),
                // so budget traps, timer ticks and threadswitch catch-ups
                // land at exactly the unfused positions for any component
                // mix. Only the final step may be a call; it advances `ip`
                // past the whole group before pushing the callee frame
                // (and re-points it on a failed push), exactly as the
                // plain call arms do.
                for (k, (cost, step)) in steps.iter().enumerate() {
                    if k > 0 {
                        self.charge_cycles(*cost)?;
                    }
                    match step {
                        OpKind::Const { dst, value } => {
                            let f = self.threads[cur].frames.last_mut().expect("frame");
                            f.locals[dst.index()] = *value;
                        }
                        OpKind::Move { dst, src } => {
                            let f = self.threads[cur].frames.last_mut().expect("frame");
                            f.locals[dst.index()] = f.locals[src.index()];
                        }
                        OpKind::Un { op, dst, src } => {
                            let f = self.threads[cur].frames.last_mut().expect("frame");
                            f.locals[dst.index()] = Value::unary(*op, f.locals[src.index()])?;
                        }
                        OpKind::Bin { op, dst, lhs, rhs } => {
                            let f = self.threads[cur].frames.last_mut().expect("frame");
                            f.locals[dst.index()] =
                                Value::binary(*op, f.locals[lhs.index()], f.locals[rhs.index()])?;
                        }
                        OpKind::GetFieldStatic { dst, obj, offset } => {
                            let f = self.threads[cur].frames.last_mut().expect("frame");
                            let object = self.heap.object(f.locals[obj.index()])?;
                            f.locals[dst.index()] = object.fields[*offset as usize];
                        }
                        OpKind::SetFieldStatic { obj, offset, src } => {
                            let f = self.threads[cur].frames.last_mut().expect("frame");
                            let o = f.locals[obj.index()];
                            let v = f.locals[src.index()];
                            self.heap.object_mut(o)?.fields[*offset as usize] = v;
                        }
                        OpKind::ArrayGet { dst, arr, idx } => {
                            let f = self.threads[cur].frames.last_mut().expect("frame");
                            let i = f.locals[idx.index()].as_i64()?;
                            let v = self.heap.array_get(f.locals[arr.index()], i)?;
                            f.locals[dst.index()] = Value::I64(v);
                        }
                        OpKind::ArraySet { arr, idx, src } => {
                            let f = self.threads[cur].frames.last_mut().expect("frame");
                            let a = f.locals[arr.index()];
                            let i = f.locals[idx.index()].as_i64()?;
                            let v = f.locals[src.index()].as_i64()?;
                            self.heap.array_set(a, i, v)?;
                        }
                        OpKind::ArrayLen { dst, arr } => {
                            let f = self.threads[cur].frames.last_mut().expect("frame");
                            let n = self.heap.array_len(f.locals[arr.index()])?;
                            f.locals[dst.index()] = Value::I64(n);
                        }
                        OpKind::Call {
                            dst,
                            callee,
                            args,
                            site,
                        } => {
                            let mut vals = std::mem::take(&mut self.arg_scratch);
                            let f = self.threads[cur].frames.last_mut().expect("frame");
                            vals.extend(args.iter().map(|a| f.locals[a.index()]));
                            f.ip += w;
                            let r =
                                self.push_frame(*callee, &vals, *dst, Some((func_id, *site)), cur);
                            vals.clear();
                            self.arg_scratch = vals;
                            if r.is_err() {
                                // See `OpKind::Call`: re-point `ip` at the
                                // group whose call was attempted.
                                self.frame_mut().ip -= w;
                            }
                            r?;
                            return Ok(Step::Ran);
                        }
                        OpKind::CallMethodStatic {
                            dst,
                            obj,
                            callee,
                            args,
                            site,
                        } => {
                            let f = self.threads[cur].frames.last_mut().expect("frame");
                            let o = f.locals[obj.index()];
                            // Target and arity verified at prepare time;
                            // the receiver still null/type-checks.
                            self.heap.object(o)?;
                            let mut vals = std::mem::take(&mut self.arg_scratch);
                            let f = self.threads[cur].frames.last_mut().expect("frame");
                            vals.push(o);
                            vals.extend(args.iter().map(|a| f.locals[a.index()]));
                            f.ip += w;
                            let r =
                                self.push_frame(*callee, &vals, *dst, Some((func_id, *site)), cur);
                            vals.clear();
                            self.arg_scratch = vals;
                            if r.is_err() {
                                self.frame_mut().ip -= w;
                            }
                            r?;
                            return Ok(Step::Ran);
                        }
                        other => {
                            unreachable!("non-guided-eligible component {other:?} in guided group")
                        }
                    }
                }
                let f = self.threads[cur].frames.last_mut().expect("frame");
                f.ip += w;
            }
            OpKind::Gap => unreachable!("fusion gap slots are never executed"),
            // Terminators (inlined into the arena as the block's last op).
            OpKind::Jump { target, backedge } => {
                if *backedge {
                    self.backedges_executed += 1;
                }
                self.enter(*target)?;
            }
            OpKind::Br {
                cond,
                t,
                f: f_target,
                t_backedge,
                f_backedge,
            } => {
                let f = self.threads[cur].frames.last_mut().expect("frame");
                let c = f.locals[cond.index()].as_bool()?;
                let (target, backedge) = if c {
                    (*t, *t_backedge)
                } else {
                    (*f_target, *f_backedge)
                };
                if backedge {
                    self.backedges_executed += 1;
                }
                self.enter(target)?;
            }
            OpKind::Ret { val } => {
                let value = val.map(|l| self.get(l)).unwrap_or(Value::Unit);
                let frame = self.threads[cur]
                    .frames
                    .pop()
                    .expect("ret pops the current frame");
                if self.threads[cur].frames.is_empty() {
                    self.threads[cur].state = ThreadState::Done;
                    return Ok(Step::SwitchRequested);
                }
                if let Some(dst) = frame.ret_dst {
                    self.set(dst, value);
                }
            }
            OpKind::Check {
                sample,
                cont,
                sample_backedge,
                cont_backedge,
            } => {
                self.checks_executed += 1;
                if self.trigger.on_check(cur) {
                    self.samples_taken += 1;
                    if S::ENABLED {
                        let ip = self.threads[cur].frames.last().expect("frame").ip;
                        self.record_sample(
                            cur,
                            func_id,
                            ip as u32,
                            *sample_backedge || *cont_backedge,
                        );
                    }
                    if P::ENABLED {
                        self.psink.record_sample(self.cycles, self.checks_executed);
                        // The surcharge below is the one data-dependent
                        // cycle charge; count the firing so `fold_profile`
                        // can attribute it to this check.
                        let f = self.threads[cur].frames.last().expect("frame");
                        let slot = f.base as usize + f.ip;
                        if let Some(n) = self.fire_counts.get_mut(slot) {
                            *n += 1;
                        }
                    }
                    // Jumping into cold duplicated code costs extra
                    // (instruction-cache effects, §4.4 footnote 6).
                    self.cycles += self.sample_switch;
                    self.goto(*sample, *sample_backedge)?;
                } else {
                    self.goto(*cont, *cont_backedge)?;
                }
            }
        }
        Ok(Step::Ran)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::run_naive;
    use crate::prepared::thread_preparations;

    fn compile(src: &str) -> Module {
        isf_frontend::compile(src).expect("test program compiles")
    }

    fn run_src(src: &str) -> Outcome {
        run(&compile(src), &VmConfig::default()).expect("test program runs")
    }

    #[test]
    fn arithmetic_and_control_flow() {
        let o = run_src(
            "fn main() { var s = 0; var i = 1; while (i <= 10) { s = s + i; i = i + 1; } print(s); }",
        );
        assert_eq!(o.output, vec![55]);
    }

    #[test]
    fn function_calls_and_recursion() {
        let o = run_src(
            "fn fib(n) { if (n < 2) { return n; } return fib(n - 1) + fib(n - 2); }
             fn main() { print(fib(15)); }",
        );
        assert_eq!(o.output, vec![610]);
    }

    #[test]
    fn objects_methods_and_dispatch() {
        let o = run_src(
            "class Shape { field tag; method area() { return 0; } }
             class Square : Shape { field side; method area() { return self.side * self.side; } }
             fn main() {
                 var s = new Square; s.side = 9;
                 var base = new Shape;
                 print(s.area()); print(base.area());
             }",
        );
        assert_eq!(o.output, vec![81, 0]);
    }

    #[test]
    fn arrays() {
        let o = run_src(
            "fn main() {
                 var a = array(5);
                 var i = 0;
                 while (i < len(a)) { a[i] = i * i; i = i + 1; }
                 print(a[4]);
             }",
        );
        assert_eq!(o.output, vec![16]);
    }

    #[test]
    fn short_circuit_evaluation_skips_rhs() {
        // Division by zero on the rhs must not execute when lhs decides.
        let o = run_src(
            "fn main() { var x = 0; if (false && 1 / x == 1) { print(1); } else { print(2); } }",
        );
        assert_eq!(o.output, vec![2]);
    }

    #[test]
    fn traps_surface_as_errors() {
        let m = compile("fn main() { var x = 0; print(1 / x); }");
        let e = run(&m, &VmConfig::default()).unwrap_err();
        assert_eq!(e.kind, TrapKind::DivisionByZero);
        assert_eq!(e.function, "main");

        let m = compile("fn main() { var a = array(2); print(a[5]); }");
        let e = run(&m, &VmConfig::default()).unwrap_err();
        assert!(matches!(e.kind, TrapKind::IndexOutOfBounds { .. }));

        let m = compile("class A { field x; } fn main() { var a = null; print(a.x); }");
        let e = run(&m, &VmConfig::default()).unwrap_err();
        assert_eq!(e.kind, TrapKind::NullDereference);
    }

    #[test]
    fn cycle_budget_stops_infinite_loops() {
        let m = compile("fn main() { while (true) { } }");
        let cfg = VmConfig {
            limits: ExecLimits::cycles(10_000),
            ..VmConfig::default()
        };
        let e = run(&m, &cfg).unwrap_err();
        assert_eq!(e.kind, TrapKind::FuelExhausted(10_000));
    }

    #[test]
    fn heap_budget_stops_allocation_storms() {
        let m = compile("fn main() { while (true) { var a = array(100); a[0] = 1; } }");
        let cfg = VmConfig {
            limits: ExecLimits {
                max_heap_words: Some(1_000),
                ..ExecLimits::default()
            },
            ..VmConfig::default()
        };
        let e = run(&m, &cfg).unwrap_err();
        assert_eq!(e.kind, TrapKind::HeapExhausted { limit_words: 1_000 });
        assert_eq!(e.function, "main");
    }

    #[test]
    fn stack_overflow_detected() {
        let m = compile("fn f(n) { return f(n + 1); } fn main() { print(f(0)); }");
        let cfg = VmConfig {
            limits: ExecLimits {
                max_stack: 64,
                ..ExecLimits::default()
            },
            ..VmConfig::default()
        };
        let e = run(&m, &cfg).unwrap_err();
        assert_eq!(e.kind, TrapKind::StackOverflow(64));
    }

    #[test]
    fn threads_spawn_join_and_interleave() {
        let o = run_src(
            "class Cell { field v; }
             fn work(c, n) { var i = 0; while (i < n) { c.v = c.v + 1; i = i + 1; } }
             fn main() {
                 var c = new Cell; c.v = 0;
                 var t1 = spawn work(c, 2000);
                 var t2 = spawn work(c, 3000);
                 join(t1); join(t2);
                 print(c.v);
             }",
        );
        assert_eq!(o.output, vec![5000]);
        assert!(o.thread_switches > 0, "timeslice must force interleaving");
    }

    #[test]
    fn deadlock_detected_for_self_join() {
        // main spawns a thread that joins a never-finishing partner set,
        // simplest case: joining a thread that joins us is impossible to
        // express; join on a thread that never terminates suffices.
        let m = compile(
            "fn forever() { while (true) { } }
             fn main() { var t = spawn forever(); join(t); }",
        );
        // The spinning thread yields on its backedge, main stays blocked;
        // bound the run so the test terminates: budget trap, not deadlock.
        let cfg = VmConfig {
            limits: ExecLimits::cycles(500_000),
            ..VmConfig::default()
        };
        let e = run(&m, &cfg).unwrap_err();
        assert_eq!(e.kind, TrapKind::FuelExhausted(500_000));
    }

    #[test]
    fn counters_track_entries_backedges_yields() {
        let o = run_src(
            "fn tick() { }
             fn main() { var i = 0; while (i < 10) { tick(); i = i + 1; } }",
        );
        // Entries: main + 10 calls to tick.
        assert_eq!(o.entries_executed, 11);
        // Backedges: 10 iterations of the while loop.
        assert_eq!(o.backedges_executed, 10);
        // Yieldpoints: 11 method entries + 10 backedges.
        assert_eq!(o.yields_executed, 21);
        assert_eq!(o.checks_executed, 0);
        assert!(o.cycles > 0);
        assert!(o.instructions > 0);
    }

    #[test]
    fn determinism_identical_runs() {
        let src = "fn mix(a, b) { return a * 31 + b; }
             fn main() { var h = 7; var i = 0; while (i < 500) { h = mix(h, i); i = i + 1; } print(h); }";
        let a = run_src(src);
        let b = run_src(src);
        assert_eq!(a.output, b.output);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.instructions, b.instructions);
    }

    #[test]
    fn busy_advances_the_clock() {
        let quiet = run_src("fn main() { }");
        let busy = run_src("fn main() { busy(100000); }");
        assert!(busy.cycles >= quiet.cycles + 100_000);
    }

    #[test]
    fn cancel_after_traps_exactly_like_an_equal_fuel_budget() {
        let src = "fn mix(a, b) { return a * 31 + b; }
             fn main() { var h = 7; var i = 0; while (i < 500) { h = mix(h, i); i = i + 1; } print(h); }";
        let m = compile(src);
        for k in [100u64, 1_000, 10_000] {
            let fuel_cfg = VmConfig {
                limits: ExecLimits::cycles(k),
                ..VmConfig::default()
            };
            let fuel = run(&m, &fuel_cfg);
            let naive_fuel = run_naive(&m, &fuel_cfg);
            let cancelled = {
                let _scope = crate::cancel::arm(None, Some(k));
                run(&m, &VmConfig::default())
            };
            let naive_cancelled = {
                let _scope = crate::cancel::arm(None, Some(k));
                run_naive(&m, &VmConfig::default())
            };
            for (got, want) in [(cancelled, fuel), (naive_cancelled, naive_fuel)] {
                match (got, want) {
                    (Err(c), Err(f)) => {
                        assert_eq!(c.kind, TrapKind::Cancelled);
                        assert_eq!(f.kind, TrapKind::FuelExhausted(k));
                        assert_eq!(c.function, f.function, "stop point diverged at k={k}");
                    }
                    (Ok(c), Ok(f)) => assert_eq!(c, f),
                    (got, want) => panic!("divergence at k={k}: {got:?} vs {want:?}"),
                }
            }
        }
    }

    #[test]
    fn tied_fuel_budget_wins_over_cancel_after() {
        let m = compile("fn main() { while (true) { } }");
        let cfg = VmConfig {
            limits: ExecLimits::cycles(5_000),
            ..VmConfig::default()
        };
        let _scope = crate::cancel::arm(None, Some(5_000));
        let e = run(&m, &cfg).unwrap_err();
        assert_eq!(e.kind, TrapKind::FuelExhausted(5_000));
    }

    #[test]
    fn fired_token_cancels_an_unbudgeted_loop_in_both_engines() {
        let m = compile("fn main() { while (true) { } }");
        let token = crate::cancel::CancelToken::new();
        let _scope = crate::cancel::arm(Some(&token), None);
        token.cancel(); // fired before the run: traps at the first poll
        let e = run(&m, &VmConfig::default()).unwrap_err();
        assert_eq!(e.kind, TrapKind::Cancelled);
        assert_eq!(e.function, "main");
        let e = run_naive(&m, &VmConfig::default()).unwrap_err();
        assert_eq!(e.kind, TrapKind::Cancelled);
        assert_eq!(e.function, "main");
    }

    #[test]
    fn unfired_token_leaves_outcomes_untouched() {
        let src = "fn main() { var i = 0; while (i < 200) { i = i + 1; } print(i); }";
        let m = compile(src);
        let clean = run(&m, &VmConfig::default()).unwrap();
        let token = crate::cancel::CancelToken::new();
        let armed = {
            let _scope = crate::cancel::arm(Some(&token), None);
            run(&m, &VmConfig::default()).unwrap()
        };
        assert_eq!(clean, armed, "an armed-but-silent token must be invisible");
    }

    #[test]
    fn cancelled_profiled_run_attributes_partial_cycles_exactly() {
        // `fold_profile`'s debug asserts pin the attribution identity
        // (per-opcode totals == the clock) for the cancelled run; the
        // explicit totals check keeps release builds honest too.
        let src = "fn mix(a, b) { return a * 31 + b; }
             fn main() { var h = 7; var i = 0; while (i < 500) { h = mix(h, i); i = i + 1; } print(h); }";
        let m = compile(src);
        let cfg = VmConfig::default();
        let prepared = PreparedModule::prepare(&m, &cfg.cost);
        let mut profile = crate::profile::OpProfile::new();
        let err = {
            let _scope = crate::cancel::arm(None, Some(4_000));
            run_prepared_profiled(&prepared, &cfg, &mut profile).unwrap_err()
        };
        assert_eq!(err.kind, TrapKind::Cancelled);
        // The partial profile must equal a fuel trap's at the same point.
        let fuel_cfg = VmConfig {
            limits: ExecLimits::cycles(4_000),
            ..cfg
        };
        let mut fuel_profile = crate::profile::OpProfile::new();
        let err = run_prepared_profiled(&prepared, &fuel_cfg, &mut fuel_profile).unwrap_err();
        assert_eq!(err.kind, TrapKind::FuelExhausted(4_000));
        assert_eq!(profile.total_cycles(), fuel_profile.total_cycles());
        assert_eq!(
            profile.total_instructions(),
            fuel_profile.total_instructions()
        );
        assert_eq!(profile.total_dispatches(), fuel_profile.total_dispatches());
    }

    #[test]
    fn prepared_engine_matches_naive_reference() {
        // Exercise every op class: arithmetic, control flow, calls, method
        // dispatch, arrays, threads, yieldpoints.
        let srcs = [
            "fn fib(n) { if (n < 2) { return n; } return fib(n - 1) + fib(n - 2); }
             fn main() { print(fib(14)); }",
            "class Acc { field total; method add(x) { self.total = self.total + x; } }
             fn main() {
                 var a = new Acc; a.total = 0;
                 var i = 0;
                 while (i < 50) { a.add(i); i = i + 1; }
                 print(a.total);
             }",
            "fn work(n) { var s = 0; var i = 0; while (i < n) { s = s + i; i = i + 1; } return s; }
             fn main() {
                 var t = spawn work(1000);
                 var local = work(500);
                 join(t);
                 print(local);
             }",
        ];
        for src in srcs {
            let m = compile(src);
            let cfg = VmConfig::default();
            let fast = run(&m, &cfg).expect("prepared engine runs");
            let slow = run_naive(&m, &cfg).expect("naive engine runs");
            assert_eq!(fast, slow, "engines diverged on: {src}");
        }
    }

    #[test]
    fn run_prepared_amortizes_one_preparation() {
        let m = compile("fn main() { var i = 0; while (i < 100) { i = i + 1; } print(i); }");
        let cfg = VmConfig::default();
        let prepared = PreparedModule::prepare(&m, &cfg.cost);
        // Thread-local count: immune to concurrent test threads preparing.
        let before = thread_preparations();
        let a = run_prepared(&prepared, &cfg).unwrap();
        let b = run_prepared(&prepared, &cfg).unwrap();
        assert_eq!(a, b);
        assert_eq!(
            thread_preparations(),
            before,
            "run_prepared must not re-prepare"
        );
    }

    #[test]
    #[should_panic(expected = "cost model differs")]
    fn run_prepared_rejects_mismatched_cost_model() {
        let m = compile("fn main() { }");
        let prepared = PreparedModule::prepare(&m, &CostModel::default());
        let cfg = VmConfig {
            cost: CostModel {
                alu: 99,
                ..CostModel::default()
            },
            ..VmConfig::default()
        };
        let _ = run_prepared(&prepared, &cfg);
    }
}
