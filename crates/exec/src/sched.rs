//! Pluggable thread scheduling for the green-thread VM.
//!
//! Both engines drive every reschedule point — timeslice `Yield`s, blocking
//! `Join`s, thread completion — through a [`SchedControl`], so the policy
//! that picks the next runnable thread is a seam rather than a hard-coded
//! loop. Three policies exist:
//!
//! * [`SchedPolicy::RoundRobin`] — the historical scheduler: scan from the
//!   current thread and take the first runnable one. The default, and
//!   byte-identical to the pre-seam engines (a dedicated fast path keeps it
//!   allocation- and recording-free).
//! * [`SchedPolicy::SeededRandom`] — a splitmix64-seeded xorshift draw at
//!   every *decision point* (a reschedule with two or more runnable
//!   candidates). The workhorse of schedule exploration.
//! * [`SchedPolicy::PctPriority`] — probabilistic concurrency testing
//!   (Burckhardt et al.): random per-thread priorities, always run the
//!   highest-priority runnable thread, and lower the current thread's
//!   priority at `depth` randomly-placed change points. Finds
//!   ordering-dependent bugs with provable probability at a far lower
//!   schedule count than uniform sampling.
//!
//! # Decision points and the tie-break rule
//!
//! A reschedule with fewer than two runnable candidates is **not** a
//! decision point: no randomness is drawn, no priority changes, no trace
//! entry is recorded, and the lone candidate (or none) is returned. This
//! makes a `Yield` in a single-runnable-thread state behave identically
//! under every policy — single-threaded programs record empty traces — and
//! keeps traces portable across policies: a trace records only genuine
//! choices. When a policy ranks two candidates equally (PCT priority ties),
//! the earlier thread in scan order (current + 1, current + 2, … modulo the
//! thread count) wins, deterministically.
//!
//! # Replay
//!
//! Every decision appends a [`SchedChoice`] to a [`ScheduleTrace`] when
//! recording is on. A trace replays with [`SchedControl::replay`]: the
//! engines are deterministic, so re-running the same program under the
//! same `VmConfig` with a recorded trace reproduces the run exactly — on
//! either engine, fused or not, profiled or not. Replay validates the
//! candidate count at every decision and panics on divergence rather than
//! silently exploring a different schedule. Traces serialize to a one-line
//! compact form (`st1:pos/count@thread,…`) so a failing schedule
//! reproduces from a log line.

use crate::trigger::{seed_stream, uniform_below};

/// Scheduling policy for picking the next runnable green thread.
///
/// `RoundRobin` is the default and is byte-identical to the historical
/// hard-coded scheduler. See the [module docs](self) for the full contract.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub enum SchedPolicy {
    /// Scan from `current + 1` and take the first runnable thread.
    #[default]
    RoundRobin,
    /// Uniform random pick among the runnable candidates at every decision
    /// point, from a splitmix64-expanded xorshift stream.
    SeededRandom {
        /// Stream seed; equal seeds give equal schedules.
        seed: u64,
    },
    /// Probabilistic concurrency testing: random per-thread base
    /// priorities, run the highest-priority candidate, and lower the
    /// current thread's priority at `depth` change points drawn uniformly
    /// from the first [`PCT_HORIZON`] decisions.
    PctPriority {
        /// Seed for priorities and change-point placement.
        seed: u64,
        /// Number of priority-change points (the PCT bug-depth parameter).
        depth: u32,
    },
}

/// Decision horizon for [`SchedPolicy::PctPriority`] change points: they
/// are drawn uniformly from decision indices `1..=PCT_HORIZON`. Runs with
/// more decisions keep the priorities they ended up with; runs with fewer
/// simply never reach the later change points (standard PCT behavior when
/// the run length is unknown up front).
pub const PCT_HORIZON: u64 = 1024;

/// One recorded scheduling decision.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct SchedChoice {
    /// Index into the candidate list, which is ordered by scan position
    /// (`current + 1`, `current + 2`, … modulo the thread count).
    pub pos: u32,
    /// Number of runnable candidates at this decision point (always ≥ 2;
    /// single-candidate reschedules are not decisions).
    pub count: u32,
    /// The thread that was chosen. Redundant given the machine state —
    /// `pos` alone steers a replay — but kept for diagnostics.
    pub thread: u32,
}

/// A replayable record of every scheduling decision in a run.
///
/// Obtained from [`SchedControl::take_trace`] after a recording run and
/// fed back through [`SchedControl::replay`]. The compact one-line string
/// form ([`ScheduleTrace::to_compact_string`] / [`ScheduleTrace::parse`])
/// round-trips exactly.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ScheduleTrace {
    /// The decisions, in execution order.
    pub choices: Vec<SchedChoice>,
}

impl ScheduleTrace {
    /// Number of recorded decisions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.choices.len()
    }

    /// Whether the run had no decision points at all (e.g. it was
    /// effectively single-threaded).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.choices.is_empty()
    }

    /// Serializes to the compact one-line form
    /// `st1:pos/count@thread,pos/count@thread,…` (just `st1:` when empty).
    #[must_use]
    pub fn to_compact_string(&self) -> String {
        let mut s = String::from("st1:");
        for (i, c) in self.choices.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("{}/{}@{}", c.pos, c.count, c.thread));
        }
        s
    }

    /// Parses the compact form produced by
    /// [`to_compact_string`](Self::to_compact_string). Returns `None` on
    /// any malformed input (wrong tag, wrong shape, `pos >= count`).
    #[must_use]
    pub fn parse(s: &str) -> Option<ScheduleTrace> {
        let body = s.strip_prefix("st1:")?;
        let mut choices = Vec::new();
        if body.is_empty() {
            return Some(ScheduleTrace { choices });
        }
        for item in body.split(',') {
            let (poscount, thread) = item.split_once('@')?;
            let (pos, count) = poscount.split_once('/')?;
            let pos: u32 = pos.parse().ok()?;
            let count: u32 = count.parse().ok()?;
            let thread: u32 = thread.parse().ok()?;
            if pos >= count || count < 2 {
                return None;
            }
            choices.push(SchedChoice { pos, count, thread });
        }
        Some(ScheduleTrace { choices })
    }
}

/// PCT runtime state: change-point placement and the priority table.
#[derive(Clone, Debug)]
struct PctState {
    seed: u64,
    /// 1-based decision indices at which the current thread's priority
    /// drops; exactly `depth` entries (duplicates collapse harmlessly).
    change_points: Vec<u64>,
    /// Lowered priorities in `[0, depth)`, most recent last. Base
    /// priorities have bit 63 set, so any lowered thread ranks below every
    /// non-lowered one.
    lowered: Vec<(u32, u64)>,
    next_low: u64,
}

impl PctState {
    fn new(seed: u64, depth: u32) -> Self {
        let mut rng = seed_stream(seed ^ 0x50C7_50C7_50C7_50C7);
        let change_points = (0..depth)
            .map(|_| uniform_below(&mut rng, PCT_HORIZON) + 1)
            .collect();
        PctState {
            seed,
            change_points,
            lowered: Vec::new(),
            next_low: u64::from(depth),
        }
    }

    fn priority(&self, thread: u32) -> u64 {
        if let Some(&(_, p)) = self.lowered.iter().rev().find(|&&(t, _)| t == thread) {
            return p;
        }
        seed_stream(self.seed ^ u64::from(thread).wrapping_add(1)) | (1 << 63)
    }

    fn pick(&mut self, candidates: &[usize], current: usize, decision: u64) -> usize {
        if self.change_points.contains(&decision) {
            self.next_low = self.next_low.saturating_sub(1);
            self.lowered.push((current as u32, self.next_low));
        }
        let mut best = 0;
        let mut best_p = self.priority(candidates[0] as u32);
        for (i, &c) in candidates.iter().enumerate().skip(1) {
            let p = self.priority(c as u32);
            // Strict `>`: priority ties go to the earlier candidate in
            // scan order, deterministically.
            if p > best_p {
                best = i;
                best_p = p;
            }
        }
        best
    }
}

#[derive(Clone, Debug)]
enum Mode {
    RoundRobin,
    SeededRandom {
        rng: u64,
    },
    Pct(PctState),
    /// Follow a recorded trace decision for decision; panic on divergence.
    Replay {
        trace: ScheduleTrace,
        at: usize,
    },
    /// Follow a forced choice-index prefix, then first-candidate
    /// (round-robin) beyond it. The bounded-DFS explorer's driver mode.
    Prefix {
        prefix: Vec<u32>,
        at: usize,
    },
}

/// Runtime scheduling state handed to an engine for one run: the policy
/// (or replay/prefix script) plus the recorded trace.
///
/// The default control is round-robin with recording off — the zero-cost
/// configuration every plain `run_*` entry point uses. Construct with
/// [`SchedControl::recording`], [`SchedControl::replay`] or
/// [`SchedControl::prefix`] for exploration, and pass to
/// [`run_prepared_sched`](crate::run_prepared_sched) /
/// [`run_naive_sched`](crate::run_naive_sched).
#[derive(Clone, Debug)]
pub struct SchedControl {
    mode: Mode,
    record: bool,
    trace: ScheduleTrace,
    decisions: u64,
    /// Candidate scratch, reused across decision points.
    scratch: Vec<usize>,
}

impl Default for SchedControl {
    fn default() -> Self {
        SchedControl {
            mode: Mode::RoundRobin,
            record: false,
            trace: ScheduleTrace::default(),
            decisions: 0,
            scratch: Vec::new(),
        }
    }
}

impl SchedControl {
    /// A control that runs `policy` and records every decision into a
    /// [`ScheduleTrace`] (retrieve it with
    /// [`take_trace`](Self::take_trace) after the run).
    #[must_use]
    pub fn recording(policy: SchedPolicy) -> Self {
        let mode = match policy {
            SchedPolicy::RoundRobin => Mode::RoundRobin,
            SchedPolicy::SeededRandom { seed } => Mode::SeededRandom {
                rng: seed_stream(seed),
            },
            SchedPolicy::PctPriority { seed, depth } => Mode::Pct(PctState::new(seed, depth)),
        };
        SchedControl {
            mode,
            record: true,
            ..SchedControl::default()
        }
    }

    /// A control that replays `trace` decision for decision, re-recording
    /// as it goes (so the replayed trace can be compared byte for byte
    /// against the original).
    ///
    /// A run may consume only a prefix of the trace — a fuel or
    /// cancellation trap mid-schedule simply leaves the tail unused. The
    /// control panics if the run *diverges*: it reaches a decision the
    /// trace does not cover, or the candidate count at a decision differs
    /// from the recorded one.
    #[must_use]
    pub fn replay(trace: ScheduleTrace) -> Self {
        SchedControl {
            mode: Mode::Replay { trace, at: 0 },
            record: true,
            ..SchedControl::default()
        }
    }

    /// A control that forces the first `prefix.len()` decisions to the
    /// given candidate indices and picks the first candidate (round-robin
    /// order) beyond them, recording everything. This is the driver mode
    /// for bounded exhaustive DFS over schedules: run with a prefix, read
    /// the recorded `(pos, count)` pairs, and backtrack on the deepest
    /// decision with an untried alternative.
    #[must_use]
    pub fn prefix(prefix: Vec<u32>) -> Self {
        SchedControl {
            mode: Mode::Prefix { prefix, at: 0 },
            record: true,
            ..SchedControl::default()
        }
    }

    /// The trace recorded so far (empty when recording is off).
    #[must_use]
    pub fn trace(&self) -> &ScheduleTrace {
        &self.trace
    }

    /// Takes the recorded trace out of the control, leaving an empty one.
    #[must_use]
    pub fn take_trace(&mut self) -> ScheduleTrace {
        std::mem::take(&mut self.trace)
    }

    /// Number of decision points encountered (multi-candidate reschedules;
    /// see the [module docs](self) for the tie-break rule).
    #[must_use]
    pub fn decisions(&self) -> u64 {
        self.decisions
    }

    /// Picks the next thread at a reschedule point, or `None` if no
    /// candidate is runnable. `runnable(idx)` reports thread `idx`'s
    /// state; candidates are scanned in round-robin order from
    /// `current + 1` and, when `require_other` is set, `current` itself is
    /// excluded.
    pub(crate) fn pick(
        &mut self,
        current: usize,
        require_other: bool,
        n: usize,
        runnable: &dyn Fn(usize) -> bool,
    ) -> Option<usize> {
        // Fast path: the default round-robin scan, allocation- and
        // recording-free — this is the historical scheduler, byte for
        // byte.
        if !self.record {
            for offset in 1..=n {
                let idx = (current + offset) % n;
                if require_other && idx == current {
                    continue;
                }
                if runnable(idx) {
                    return Some(idx);
                }
            }
            return None;
        }
        self.scratch.clear();
        for offset in 1..=n {
            let idx = (current + offset) % n;
            if require_other && idx == current {
                continue;
            }
            if runnable(idx) {
                self.scratch.push(idx);
            }
        }
        let count = self.scratch.len();
        if count == 0 {
            return None;
        }
        if count == 1 {
            // Not a decision point: a lone candidate (e.g. a `Yield` with
            // no other runnable thread) draws no randomness, changes no
            // priority and records no trace entry, so it is identical
            // under every policy.
            return Some(self.scratch[0]);
        }
        self.decisions += 1;
        let decision = self.decisions;
        let pos = match &mut self.mode {
            Mode::RoundRobin => 0,
            Mode::SeededRandom { rng } => uniform_below(rng, count as u64) as usize,
            Mode::Pct(pct) => pct.pick(&self.scratch, current, decision),
            Mode::Replay { trace, at } => {
                let i = *at;
                *at += 1;
                let c = trace.choices.get(i).unwrap_or_else(|| {
                    panic!(
                        "schedule replay diverged: trace has {} decisions, run reached decision {}",
                        trace.choices.len(),
                        i + 1
                    )
                });
                assert_eq!(
                    c.count as usize, count,
                    "schedule replay diverged at decision {}: recorded {} candidates, run has {count}",
                    i + 1,
                    c.count,
                );
                c.pos as usize
            }
            Mode::Prefix { prefix, at } => {
                let i = *at;
                *at += 1;
                if i < prefix.len() {
                    let p = prefix[i] as usize;
                    assert!(
                        p < count,
                        "schedule prefix invalid at decision {}: choice {p} of {count} candidates",
                        i + 1,
                    );
                    p
                } else {
                    0
                }
            }
        };
        let chosen = self.scratch[pos];
        self.trace.choices.push(SchedChoice {
            pos: pos as u32,
            count: count as u32,
            thread: chosen as u32,
        });
        Some(chosen)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_compact_string_round_trips() {
        let trace = ScheduleTrace {
            choices: vec![
                SchedChoice {
                    pos: 1,
                    count: 3,
                    thread: 2,
                },
                SchedChoice {
                    pos: 0,
                    count: 2,
                    thread: 0,
                },
            ],
        };
        let s = trace.to_compact_string();
        assert_eq!(s, "st1:1/3@2,0/2@0");
        assert_eq!(ScheduleTrace::parse(&s), Some(trace));
        assert_eq!(ScheduleTrace::parse("st1:"), Some(ScheduleTrace::default()));
        assert_eq!(ScheduleTrace::parse("st2:1/3@2"), None);
        assert_eq!(
            ScheduleTrace::parse("st1:3/3@2"),
            None,
            "pos must be < count"
        );
        assert_eq!(
            ScheduleTrace::parse("st1:0/1@0"),
            None,
            "decisions have ≥ 2 candidates"
        );
    }

    #[test]
    fn default_fast_path_matches_recording_round_robin() {
        // The recording round-robin path must pick exactly what the
        // historical scan picks, for every (current, runnable-set) shape.
        let n = 4;
        for mask in 0u32..16 {
            for current in 0..n {
                for require_other in [false, true] {
                    let runnable = |idx: usize| mask & (1 << idx) != 0;
                    let mut fast = SchedControl::default();
                    let mut rec = SchedControl::recording(SchedPolicy::RoundRobin);
                    assert_eq!(
                        fast.pick(current, require_other, n, &runnable),
                        rec.pick(current, require_other, n, &runnable),
                        "mask={mask:04b} current={current} require_other={require_other}"
                    );
                }
            }
        }
    }

    #[test]
    fn single_candidate_points_record_nothing() {
        // Two threads, only one runnable: every policy takes the lone
        // candidate and records no decision.
        for policy in [
            SchedPolicy::RoundRobin,
            SchedPolicy::SeededRandom { seed: 42 },
            SchedPolicy::PctPriority { seed: 42, depth: 3 },
        ] {
            let mut ctl = SchedControl::recording(policy);
            let got = ctl.pick(0, true, 2, &|idx| idx == 1);
            assert_eq!(got, Some(1), "{policy:?}");
            assert!(ctl.trace().is_empty(), "{policy:?} recorded a non-decision");
            assert_eq!(ctl.decisions(), 0);
        }
    }

    #[test]
    fn seeded_random_is_deterministic_and_seed_sensitive() {
        let run = |seed: u64| {
            let mut ctl = SchedControl::recording(SchedPolicy::SeededRandom { seed });
            let picks: Vec<_> = (0..32)
                .map(|i| ctl.pick(i % 3, false, 3, &|_| true).unwrap())
                .collect();
            (picks, ctl.take_trace())
        };
        let (p1, t1) = run(7);
        let (p2, t2) = run(7);
        assert_eq!(p1, p2);
        assert_eq!(t1, t2);
        let (p3, _) = run(8);
        assert_ne!(p1, p3, "distinct seeds should give distinct schedules");
    }

    #[test]
    fn replay_follows_trace_and_validates_counts() {
        let mut rec = SchedControl::recording(SchedPolicy::SeededRandom { seed: 99 });
        let picks: Vec<_> = (0..16)
            .map(|i| rec.pick(i % 4, false, 4, &|_| true).unwrap())
            .collect();
        let trace = rec.take_trace();
        let mut rep = SchedControl::replay(trace.clone());
        let replayed: Vec<_> = (0..16)
            .map(|i| rep.pick(i % 4, false, 4, &|_| true).unwrap())
            .collect();
        assert_eq!(picks, replayed);
        assert_eq!(
            rep.take_trace(),
            trace,
            "replay re-records byte-identically"
        );
    }

    #[test]
    fn replay_may_stop_early_but_not_diverge() {
        let mut rec = SchedControl::recording(SchedPolicy::SeededRandom { seed: 5 });
        for _ in 0..8 {
            rec.pick(0, false, 3, &|_| true);
        }
        let trace = rec.take_trace();
        // Consuming a prefix (a trapped run) is fine.
        let mut rep = SchedControl::replay(trace);
        for _ in 0..3 {
            rep.pick(0, false, 3, &|_| true);
        }
        assert_eq!(rep.trace().len(), 3);
    }

    #[test]
    #[should_panic(expected = "schedule replay diverged")]
    fn replay_panics_on_candidate_count_mismatch() {
        let mut rec = SchedControl::recording(SchedPolicy::SeededRandom { seed: 5 });
        rec.pick(0, false, 3, &|_| true);
        let mut rep = SchedControl::replay(rec.take_trace());
        rep.pick(0, false, 2, &|_| true);
    }

    #[test]
    fn prefix_mode_forces_choices_then_goes_round_robin() {
        let mut ctl = SchedControl::prefix(vec![2, 1]);
        assert_eq!(ctl.pick(0, false, 4, &|_| true), Some(3)); // candidates [1,2,3,0], pos 2
        assert_eq!(ctl.pick(3, false, 4, &|_| true), Some(1)); // candidates [0,1,2,3], pos 1
        assert_eq!(ctl.pick(1, false, 4, &|_| true), Some(2)); // beyond prefix: pos 0
        let trace = ctl.take_trace();
        assert_eq!(
            trace.choices.iter().map(|c| c.pos).collect::<Vec<_>>(),
            vec![2, 1, 0]
        );
        assert!(trace.choices.iter().all(|c| c.count == 4));
    }

    #[test]
    fn pct_lowers_current_thread_priority_at_change_points() {
        // With depth 0 there are no change points: PCT is a fixed random
        // priority order, so repeated decisions over the same candidates
        // pick the same thread.
        let mut ctl = SchedControl::recording(SchedPolicy::PctPriority { seed: 3, depth: 0 });
        let first = ctl.pick(0, false, 4, &|_| true).unwrap();
        for _ in 0..8 {
            assert_eq!(ctl.pick(0, false, 4, &|_| true), Some(first));
        }
        // With a large depth, the running thread keeps getting lowered, so
        // the schedule eventually moves off the top-priority thread.
        let mut ctl = SchedControl::recording(SchedPolicy::PctPriority { seed: 3, depth: 64 });
        let mut seen = std::collections::BTreeSet::new();
        let mut cur = 0;
        for _ in 0..64 {
            cur = ctl.pick(cur, false, 4, &|_| true).unwrap();
            seen.insert(cur);
        }
        assert!(seen.len() > 1, "change points never moved the schedule");
    }
}
