//! The cycle-cost model.
//!
//! Each interpreted instruction charges a fixed number of simulated cycles;
//! overheads in the reproduced tables are ratios of simulated cycles.
//! Defaults are calibrated so that the paper's key cost relationships hold:
//!
//! * a counter-based check costs a memory load, decrement, compare, branch
//!   and store (Figure 3) — a bit more than a yieldpoint's load/test/branch;
//! * the field-access instrumentation "performs two loads, an increment,
//!   and a store, which is similar to the cost of a counter-based check"
//!   (§4.3) — so guarding it with a check is pointless, the No-Duplication
//!   pathology of Table 3;
//! * the call-edge instrumentation walks the stack and hashes, an order of
//!   magnitude more than a check — so sampling pays off handsomely.

use isf_ir::{Inst, InstrOp, Term};

/// Cycle costs per instruction kind. Construct with [`CostModel::default`]
/// and override individual fields for ablation studies.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct CostModel {
    /// Constants, moves, unary and simple binary ALU operations.
    pub alu: u64,
    /// Integer multiplication.
    pub mul: u64,
    /// Integer division and remainder (multi-cycle on every real core).
    pub div: u64,
    /// Unconditional jump.
    pub jump: u64,
    /// Conditional branch.
    pub branch: u64,
    /// Function return.
    pub ret: u64,
    /// Object allocation.
    pub new_object: u64,
    /// Array allocation.
    pub new_array: u64,
    /// Field read/write.
    pub field_access: u64,
    /// Array element read/write (includes the bounds check).
    pub array_access: u64,
    /// Array length read.
    pub array_len: u64,
    /// Direct call (frame setup + argument copy).
    pub call: u64,
    /// Dynamically dispatched call (adds the method lookup).
    pub call_method: u64,
    /// Printing a value.
    pub print: u64,
    /// Spawning a thread.
    pub spawn: u64,
    /// One (possibly blocking) `join` attempt.
    pub join: u64,
    /// A yieldpoint: load threadswitch bit, test, branch.
    pub yieldpoint: u64,
    /// A counter-based check: load, decrement, compare, branch, store
    /// (paper Figure 3).
    pub check: u64,
    /// Extra cost charged when a check fires and control transfers into
    /// duplicated code — the instruction-cache-miss cost the paper notes
    /// for "jumping back and forth between original and duplicated code"
    /// (§4.4, footnote 6).
    pub sample_switch: u64,
    /// Call-edge instrumentation: examine the call stack, record the
    /// (caller, site, callee) triple (paper §4.2, deliberately simple and
    /// expensive).
    pub instr_call_edge: u64,
    /// Field-access instrumentation: two loads, increment, store (§4.3).
    pub instr_field_access: u64,
    /// Basic-block counting.
    pub instr_block_count: u64,
    /// Intraprocedural edge counting.
    pub instr_edge_count: u64,
    /// Value profiling (hash of observed value into a histogram).
    pub instr_value_profile: u64,
    /// Path-register reset or increment (one register operation).
    pub instr_path_arith: u64,
    /// Path recording (hash of the accumulated path id).
    pub instr_path_record: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        Self {
            alu: 1,
            mul: 2,
            div: 8,
            jump: 1,
            branch: 1,
            ret: 2,
            new_object: 20,
            new_array: 24,
            field_access: 3,
            array_access: 3,
            array_len: 1,
            call: 10,
            call_method: 14,
            print: 8,
            spawn: 40,
            join: 5,
            yieldpoint: 4,
            check: 5,
            sample_switch: 12,
            instr_call_edge: 180,
            instr_field_access: 6,
            instr_block_count: 4,
            instr_edge_count: 5,
            instr_value_profile: 12,
            instr_path_arith: 1,
            instr_path_record: 8,
        }
    }
}

impl CostModel {
    /// Cycles charged for one instruction.
    pub fn inst_cost(&self, inst: &Inst) -> u64 {
        match inst {
            Inst::Const { .. } | Inst::Move { .. } | Inst::Un { .. } => self.alu,
            Inst::Bin { op, .. } => match op {
                isf_ir::BinOp::Mul => self.mul,
                isf_ir::BinOp::Div | isf_ir::BinOp::Rem => self.div,
                _ => self.alu,
            },
            Inst::New { .. } => self.new_object,
            Inst::GetField { .. } | Inst::SetField { .. } => self.field_access,
            Inst::NewArray { .. } => self.new_array,
            Inst::ArrayGet { .. } | Inst::ArraySet { .. } => self.array_access,
            Inst::ArrayLen { .. } => self.array_len,
            Inst::Call { .. } => self.call,
            Inst::CallMethod { .. } => self.call_method,
            Inst::Print { .. } => self.print,
            Inst::Spawn { .. } => self.spawn,
            Inst::Join { .. } => self.join,
            Inst::Yield => self.yieldpoint,
            Inst::Busy { cycles } => u64::from(*cycles),
            Inst::Instr(op) => self.instr_cost(op),
        }
    }

    /// Cycles charged for one instrumentation operation.
    pub fn instr_cost(&self, op: &InstrOp) -> u64 {
        match op {
            InstrOp::CallEdge => self.instr_call_edge,
            InstrOp::FieldAccess { .. } => self.instr_field_access,
            InstrOp::BlockCount { .. } => self.instr_block_count,
            InstrOp::EdgeCount { .. } => self.instr_edge_count,
            InstrOp::ValueProfile { .. } => self.instr_value_profile,
            InstrOp::PathStart { .. } | InstrOp::PathIncr { .. } => self.instr_path_arith,
            InstrOp::PathEnd { .. } => self.instr_path_record,
        }
    }

    /// Cycles charged for one terminator execution (the check's
    /// sample-switch surcharge is charged separately, only when it fires).
    pub fn term_cost(&self, term: &Term) -> u64 {
        match term {
            Term::Jump(_) => self.jump,
            Term::Br { .. } => self.branch,
            Term::Ret(_) => self.ret,
            Term::Check { .. } => self.check,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isf_ir::{BlockId, LocalId};

    #[test]
    fn paper_cost_relationships_hold() {
        let c = CostModel::default();
        // Check slightly dearer than a yieldpoint (extra decrement+store).
        assert!(c.check > c.yieldpoint);
        // Field-access instrumentation ≈ a check (No-Duplication pathology).
        assert!(c.instr_field_access.abs_diff(c.check) <= 2);
        // Call-edge instrumentation (a stack walk plus hashing) is
        // drastically dearer — tens of checks' worth.
        assert!(c.instr_call_edge >= 30 * c.check);
    }

    #[test]
    fn busy_charges_its_literal_cost() {
        let c = CostModel::default();
        assert_eq!(c.inst_cost(&Inst::Busy { cycles: 123 }), 123);
    }

    #[test]
    fn term_costs() {
        let c = CostModel::default();
        assert_eq!(c.term_cost(&Term::Jump(BlockId::new(0))), c.jump);
        assert_eq!(
            c.term_cost(&Term::Check {
                sample: BlockId::new(0),
                cont: BlockId::new(0),
            }),
            c.check
        );
        assert_eq!(c.term_cost(&Term::Ret(Some(LocalId::new(0)))), c.ret);
    }
}
