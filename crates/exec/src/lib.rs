//! Execution engine for ISF modules: a deterministic interpreter with a
//! cycle-cost model, green threads, yieldpoints and pluggable sampling
//! triggers.
//!
//! This crate is the reproduction's stand-in for the Jalapeño runtime on
//! the 333 MHz PowerPC of the paper's evaluation. Two substitutions keep
//! the paper's experiments meaningful on arbitrary hardware:
//!
//! * **Simulated cycles instead of wall-clock time.** Every instruction
//!   charges a fixed cost ([`CostModel`]); "overhead" in the reproduced
//!   tables is the ratio of simulated cycles between an instrumented and an
//!   uninstrumented run, which is exactly the quantity the paper's
//!   percentages express, minus measurement noise. (The Criterion benches
//!   double-check that wall-clock time orders the same way.)
//! * **A simulated 10 ms timer.** Jalapeño's hardware timer sets a
//!   threadswitch bit read by yieldpoints; here the simulated clock sets the
//!   bit every [`VmConfig::timeslice`] cycles. The timer-based *sampling*
//!   trigger of §4.6 ([`Trigger::TimerBit`]) works the same way, which
//!   reproduces its mis-attribution pathology: a long-latency instruction
//!   absorbs the period, and the *next* check takes the sample.
//!
//! The interpreter executes [`isf_ir::Term::Check`] terminators by asking
//! the configured [`Trigger`] whether the sample condition is true — the
//! decrement/reset bookkeeping of the paper's Figure 3 lives in
//! [`Trigger`]'s runtime state, shared by every check in the program so
//! that one global counter distributes samples over all sample points.
//!
//! # Example
//!
//! ```
//! use isf_exec::{run, VmConfig};
//!
//! let module = isf_frontend::compile(
//!     "fn main() { var i = 0; while (i < 5) { print(i); i = i + 1; } }",
//! ).unwrap();
//! let outcome = run(&module, &VmConfig::default())?;
//! assert_eq!(outcome.output, vec![0, 1, 2, 3, 4]);
//! assert!(outcome.cycles > 0);
//! # Ok::<(), isf_exec::VmError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cancel;
mod cost;
mod error;
mod heap;
mod interp;
mod naive;
mod outcome;
mod prepared;
pub mod profile;
pub mod sched;
mod trace;
mod trigger;
mod value;

pub use cancel::{CancelScope, CancelToken};
pub use cost::CostModel;
pub use error::{TrapKind, VmError};
pub use heap::Heap;
pub use interp::{
    run, run_prepared, run_prepared_observed, run_prepared_profiled, run_prepared_sched,
    run_prepared_traced, run_traced, ExecLimits, VmConfig,
};
pub use naive::{
    run_naive, run_naive_observed, run_naive_profiled, run_naive_sched, run_naive_traced,
};
pub use outcome::{Outcome, ZeroCycleBaseline};
pub use prepared::{
    fuse_mode, mine_hot_sequences, preparations, set_fuse_mode, thread_preparations, FuseMode,
    HotSequence, PreparedModule,
};
pub use profile::{FuseGuidance, NoMetrics, OpProfile, ProfileSink, NUM_OPCODES, OPCODE_NAMES};
pub use sched::{SchedChoice, SchedControl, SchedPolicy, ScheduleTrace};
pub use trace::{BurstRecord, NoTrace, TraceBuffer, TraceSink};
pub use trigger::Trigger;
pub use value::Value;
