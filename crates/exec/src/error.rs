//! Runtime errors (traps).

use std::error::Error;
use std::fmt;

/// Why execution trapped.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum TrapKind {
    /// An operand had the wrong kind.
    TypeError {
        /// What the instruction required.
        expected: &'static str,
        /// What it got.
        found: &'static str,
    },
    /// Integer division or remainder by zero.
    DivisionByZero,
    /// Field or method access through `null`.
    NullDereference,
    /// Array index out of bounds.
    IndexOutOfBounds {
        /// The requested index.
        index: i64,
        /// The array length.
        len: usize,
    },
    /// Requested array length was negative.
    NegativeArrayLength(i64),
    /// The receiver's class declares no such field.
    NoSuchField(String),
    /// The receiver's class declares no such method.
    NoSuchMethod(String),
    /// A dynamic method call passed the wrong number of arguments.
    ArityMismatch {
        /// The resolved method.
        method: String,
        /// Arguments supplied (including the receiver).
        given: usize,
        /// Arguments expected (including the receiver).
        expected: usize,
    },
    /// Every live thread is blocked in `join`.
    Deadlock,
    /// The configured cycle budget (execution fuel) was exhausted.
    FuelExhausted(u64),
    /// The configured heap budget was exhausted by an allocation.
    HeapExhausted {
        /// The heap-word limit that was hit.
        limit_words: u64,
    },
    /// The call stack exceeded the configured depth limit.
    StackOverflow(usize),
    /// The run was cooperatively cancelled (a fired
    /// [`CancelToken`](crate::CancelToken) or a deterministic
    /// `cancel_after` point). Not a budget trap: budgets are part of a
    /// cell's configuration and reproduce deterministically, while
    /// cancellation is imposed from outside the run — harnesses classify
    /// and retry it like an external failure, not like fuel running out.
    Cancelled,
}

impl TrapKind {
    /// Whether this trap is a configured resource budget running out
    /// (fuel, heap, stack) rather than a semantic error in the program.
    /// Budget traps are the expected, recoverable way a production
    /// sampling framework degrades; harnesses classify them separately.
    pub fn is_budget(&self) -> bool {
        matches!(
            self,
            TrapKind::FuelExhausted(_)
                | TrapKind::HeapExhausted { .. }
                | TrapKind::StackOverflow(_)
        )
    }
}

impl fmt::Display for TrapKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrapKind::TypeError { expected, found } => {
                write!(f, "expected {expected}, found {found}")
            }
            TrapKind::DivisionByZero => write!(f, "division by zero"),
            TrapKind::NullDereference => write!(f, "null dereference"),
            TrapKind::IndexOutOfBounds { index, len } => {
                write!(f, "index {index} out of bounds for length {len}")
            }
            TrapKind::NegativeArrayLength(n) => write!(f, "negative array length {n}"),
            TrapKind::NoSuchField(name) => write!(f, "no such field `{name}`"),
            TrapKind::NoSuchMethod(name) => write!(f, "no such method `{name}`"),
            TrapKind::ArityMismatch {
                method,
                given,
                expected,
            } => write!(
                f,
                "method `{method}` called with {given} argument(s), expects {expected}"
            ),
            TrapKind::Deadlock => write!(f, "all threads blocked in join"),
            TrapKind::FuelExhausted(n) => {
                write!(f, "cycle budget of {n} exceeded")
            }
            TrapKind::HeapExhausted { limit_words } => {
                write!(f, "heap budget of {limit_words} words exhausted")
            }
            TrapKind::StackOverflow(n) => write!(f, "call stack exceeded {n} frames"),
            TrapKind::Cancelled => write!(f, "cancelled"),
        }
    }
}

/// A trap annotated with where it happened.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct VmError {
    /// What went wrong.
    pub kind: TrapKind,
    /// The function executing when the trap fired.
    pub function: String,
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trap in `{}`: {}", self.function, self.kind)
    }
}

impl Error for VmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_function_and_kind() {
        let e = VmError {
            kind: TrapKind::DivisionByZero,
            function: "main".into(),
        };
        assert_eq!(e.to_string(), "trap in `main`: division by zero");
    }

    #[test]
    fn bounds_message() {
        let k = TrapKind::IndexOutOfBounds { index: 9, len: 4 };
        assert_eq!(k.to_string(), "index 9 out of bounds for length 4");
    }

    #[test]
    fn budget_traps_are_classified() {
        assert!(TrapKind::FuelExhausted(10).is_budget());
        assert!(TrapKind::HeapExhausted { limit_words: 64 }.is_budget());
        assert!(TrapKind::StackOverflow(4).is_budget());
        assert!(!TrapKind::DivisionByZero.is_budget());
        assert!(!TrapKind::NullDereference.is_budget());
        // Cancellation is imposed from outside the run: never a budget.
        assert!(!TrapKind::Cancelled.is_budget());
        assert_eq!(TrapKind::Cancelled.to_string(), "cancelled");
        assert_eq!(
            TrapKind::HeapExhausted { limit_words: 64 }.to_string(),
            "heap budget of 64 words exhausted"
        );
    }
}
