//! The reference tree-walking interpreter.
//!
//! This is the original execution engine: it walks the [`Module`] IR
//! directly, re-deriving instruction costs from the [`CostModel`] on every
//! step, resolving block targets through the function on every transfer,
//! and probing a per-run `HashSet<(BlockId, BlockId)>` on every control
//! transfer for the Property 1 backedge accounting (the set itself is
//! recomputed by `loops::backedges` on every [`run_naive`] call).
//!
//! Production code goes through the pre-decoded engine in `interp` /
//! `prepared`; this module exists as the *semantic reference* the fast
//! engine is differentially tested against (the `tests` crate asserts
//! identical [`Outcome`]s on generated programs) and as the naive side of
//! the `interp_dispatch` ablation bench. Keep its behaviour frozen: any
//! observable divergence from `run` is a bug in one of the two engines.

use std::collections::HashSet;

use isf_ir::{loops, BlockId, CallSiteId, FuncId, Inst, InstrOp, LocalId, Module, Term};
use isf_profile::ProfileData;

use crate::cancel::{self, ArmedToken, NAIVE_POLL_INTERVAL};
use crate::error::{TrapKind, VmError};
use crate::heap::Heap;
use crate::interp::VmConfig;
use crate::outcome::Outcome;
use crate::profile::{opcode_of_inst, opcode_of_term, NoMetrics, ProfileSink};
use crate::sched::SchedControl;
use crate::trace::{BurstRecord, NoTrace, TraceSink};
use crate::trigger::TriggerState;
use crate::value::Value;

/// Runs `module` to completion on the reference tree-walking interpreter.
///
/// Semantically identical to [`crate::run`] (which uses the pre-decoded
/// engine); kept for differential testing and dispatch-cost ablation.
///
/// # Errors
///
/// Returns a [`VmError`] on any runtime trap, exactly as [`crate::run`]
/// does.
pub fn run_naive(module: &Module, config: &VmConfig) -> Result<Outcome, VmError> {
    run_naive_traced(module, config, &mut NoTrace)
}

/// [`run_naive`] with a burst-trace sink.
///
/// Sample points are identified by the same `(func, check_ip)` arena
/// coordinates the pre-decoded engine reports, so a naive trace is
/// comparable — and, by the differential tests, identical — to a prepared
/// trace of the same run.
///
/// # Errors
///
/// Returns a [`VmError`] on any runtime trap, exactly as [`crate::run`]
/// does.
pub fn run_naive_traced<S: TraceSink>(
    module: &Module,
    config: &VmConfig,
    sink: &mut S,
) -> Result<Outcome, VmError> {
    run_naive_observed(module, config, sink, &mut NoMetrics)
}

/// [`run_naive`] with a per-opcode dispatch-profile sink.
///
/// Dispatches are classified into the same opcode indices the unfused
/// prepared decode assigns the corresponding instructions (see
/// [`crate::profile`]), so a naive profile is comparable — and, by the
/// differential tests, identical — to an unfused prepared profile of the
/// same run.
///
/// # Errors
///
/// Returns a [`VmError`] on any runtime trap, exactly as [`crate::run`]
/// does.
pub fn run_naive_profiled<P: ProfileSink>(
    module: &Module,
    config: &VmConfig,
    profile: &mut P,
) -> Result<Outcome, VmError> {
    run_naive_observed(module, config, &mut NoTrace, profile)
}

/// [`run_naive`] with both observers: a burst-trace sink and a
/// dispatch-profile sink, each independently monomorphized.
///
/// # Errors
///
/// Returns a [`VmError`] on any runtime trap, exactly as [`crate::run`]
/// does.
pub fn run_naive_observed<S: TraceSink, P: ProfileSink>(
    module: &Module,
    config: &VmConfig,
    sink: &mut S,
    profile: &mut P,
) -> Result<Outcome, VmError> {
    // The default control is the recording-free round-robin fast path —
    // this call adds nothing to the plain engine.
    let mut sched = SchedControl::default();
    run_naive_sched(module, config, sink, profile, &mut sched)
}

/// [`run_naive_observed`] with an explicit scheduling control, the naive
/// counterpart of [`crate::run_prepared_sched`]. Reschedule points are
/// driven by the same deterministic simulated clock on both engines, so a
/// [`crate::ScheduleTrace`] recorded on one engine replays byte-identically
/// on the other.
///
/// # Panics
///
/// Panics if a replaying control diverges from its trace (impossible when
/// replaying a trace recorded from the same program and config).
///
/// # Errors
///
/// Returns a [`VmError`] on any runtime trap, exactly as [`crate::run`]
/// does.
pub fn run_naive_sched<S: TraceSink, P: ProfileSink>(
    module: &Module,
    config: &VmConfig,
    sink: &mut S,
    profile: &mut P,
    sched: &mut SchedControl,
) -> Result<Outcome, VmError> {
    let mut machine = Machine::new(module, config, sink, profile, sched);
    let result = machine.run_to_completion();
    match result {
        Ok(()) => Ok(machine.into_outcome()),
        Err(kind) => Err(VmError {
            function: machine.current_function_name(),
            kind,
        }),
    }
}

struct Frame {
    func: FuncId,
    block: BlockId,
    ip: usize,
    locals: Vec<Value>,
    ret_dst: Option<LocalId>,
    caller: Option<(FuncId, CallSiteId)>,
    /// Ball–Larus path register. `None` means "no path in progress": set
    /// by `PathStart`, consumed by `PathEnd`. The option makes sampled
    /// runs sound — a burst that enters duplicated code mid-path simply
    /// records nothing until the next path start.
    path_reg: Option<i64>,
}

#[derive(Copy, Clone, PartialEq, Eq, Debug)]
enum ThreadState {
    Runnable,
    Blocked(usize),
    Done,
}

struct Thread {
    frames: Vec<Frame>,
    state: ThreadState,
}

enum Step {
    Ran,
    SwitchRequested,
}

struct Machine<'m, 's, S: TraceSink, P: ProfileSink> {
    module: &'m Module,
    sink: &'s mut S,
    /// Per-opcode dispatch-profile sink; recording sites are guarded by
    /// `if P::ENABLED`, so [`NoMetrics`] compiles them away.
    psink: &'s mut P,
    /// Per-function arena offset of each block (instructions plus the
    /// inlined terminator, as the prepared engine lays them out), so burst
    /// records name sample points by the same `(func, check_ip)`
    /// coordinates. Only computed when the sink is enabled.
    block_starts: Vec<Vec<u32>>,
    /// Clock snapshots at the previous sample, for burst lengths.
    last_sample_cycles: u64,
    last_sample_instructions: u64,
    cost: crate::cost::CostModel,
    trigger: TriggerState,
    timeslice: u64,
    max_cycles: Option<u64>,
    max_stack: usize,
    /// Cooperative-cancellation token armed on this thread at machine
    /// construction ([`crate::cancel::arm`]). This engine has no cheap
    /// control-transfer funnel, so it polls every
    /// [`NAIVE_POLL_INTERVAL`] dispatches instead of at block entries.
    cancel: Option<ArmedToken>,
    /// Dispatches left until the next epoch poll.
    poll_in: u32,
    /// Deterministic cancellation point, checked exactly where the fuel
    /// budget is (see the prepared engine's `charge_cycles`).
    cancel_after: Option<u64>,
    heap: Heap,
    threads: Vec<Thread>,
    current: usize,
    /// Per-function backedge sets of the *executed* module, for the
    /// Property 1 accounting.
    backedges: Vec<HashSet<(BlockId, BlockId)>>,
    // Clock and scheduler bit.
    cycles: u64,
    next_switch: u64,
    switch_bit: bool,
    /// Reusable scratch buffer for call-argument marshalling, so
    /// `Call`/`CallMethod`/`Spawn` don't allocate a fresh `Vec` per call.
    arg_scratch: Vec<Value>,
    // Counters.
    instructions: u64,
    checks_executed: u64,
    samples_taken: u64,
    yields_executed: u64,
    entries_executed: u64,
    backedges_executed: u64,
    thread_switches: u64,
    output: Vec<i64>,
    profile: ProfileData,
    /// Scheduling seam: picks the next thread at every reschedule point,
    /// exactly as the prepared engine's (`interp::Machine::sched`).
    sched: &'s mut SchedControl,
}

impl<'m, 's, S: TraceSink, P: ProfileSink> Machine<'m, 's, S, P> {
    fn new(
        module: &'m Module,
        config: &VmConfig,
        sink: &'s mut S,
        psink: &'s mut P,
        sched: &'s mut SchedControl,
    ) -> Self {
        let backedges = module
            .functions()
            .map(|(_, f)| loops::backedges(f).into_iter().collect())
            .collect();
        let block_starts = if S::ENABLED {
            module
                .functions()
                .map(|(_, f)| {
                    let mut starts = Vec::with_capacity(f.num_blocks());
                    let mut offset = 0u32;
                    for (_, b) in f.blocks() {
                        starts.push(offset);
                        offset += b.insts().len() as u32 + 1;
                    }
                    starts
                })
                .collect()
        } else {
            Vec::new()
        };
        let main_frame = Frame {
            func: module.main(),
            block: BlockId::new(0),
            ip: 0,
            locals: vec![Value::Unit; module.function(module.main()).num_locals()],
            ret_dst: None,
            caller: None,
            path_reg: None,
        };
        Machine {
            module,
            sink,
            psink,
            block_starts,
            last_sample_cycles: 0,
            last_sample_instructions: 0,
            cost: config.cost,
            trigger: TriggerState::new(config.trigger),
            timeslice: config.timeslice.max(1),
            max_cycles: config.limits.max_cycles,
            max_stack: config.limits.max_stack,
            cancel: cancel::armed_token(),
            poll_in: NAIVE_POLL_INTERVAL,
            cancel_after: cancel::armed_after(),
            heap: Heap::with_limit(config.limits.max_heap_words),
            threads: vec![Thread {
                frames: vec![main_frame],
                state: ThreadState::Runnable,
            }],
            current: 0,
            backedges,
            cycles: 0,
            next_switch: config.timeslice.max(1),
            switch_bit: false,
            arg_scratch: Vec::new(),
            instructions: 0,
            checks_executed: 0,
            samples_taken: 0,
            yields_executed: 0,
            entries_executed: 1, // main's method entry
            backedges_executed: 0,
            thread_switches: 0,
            output: Vec::new(),
            profile: ProfileData::new(),
            sched,
        }
    }

    fn into_outcome(self) -> Outcome {
        Outcome {
            output: self.output,
            cycles: self.cycles,
            instructions: self.instructions,
            profile: self.profile,
            checks_executed: self.checks_executed,
            samples_taken: self.samples_taken,
            yields_executed: self.yields_executed,
            entries_executed: self.entries_executed,
            backedges_executed: self.backedges_executed,
            thread_switches: self.thread_switches,
        }
    }

    fn current_function_name(&self) -> String {
        self.threads
            .get(self.current)
            .and_then(|t| t.frames.last())
            .map(|f| self.module.function(f.func).name().to_owned())
            .unwrap_or_else(|| "<no frame>".to_owned())
    }

    fn run_to_completion(&mut self) -> Result<(), TrapKind> {
        loop {
            match self.threads[self.current].state {
                ThreadState::Runnable => match self.profiled_step()? {
                    Step::Ran => {}
                    Step::SwitchRequested => {
                        if !self.reschedule(true) {
                            // No other runnable thread; stay on the current
                            // one if it can still run.
                            match self.threads[self.current].state {
                                ThreadState::Runnable => {}
                                ThreadState::Done => {
                                    if self.all_done() {
                                        return Ok(());
                                    }
                                    return Err(TrapKind::Deadlock);
                                }
                                ThreadState::Blocked(_) => return Err(TrapKind::Deadlock),
                            }
                        }
                    }
                },
                ThreadState::Done | ThreadState::Blocked(_) => {
                    if self.all_done() {
                        return Ok(());
                    }
                    if !self.reschedule(false) {
                        return Err(TrapKind::Deadlock);
                    }
                }
            }
        }
    }

    fn all_done(&self) -> bool {
        self.threads.iter().all(|t| t.state == ThreadState::Done)
    }

    /// Rotates to the next runnable thread per the scheduling policy
    /// (unblocking joiners whose target finished). Returns `false` if no
    /// *other* thread could be scheduled (`require_other = true`) or no
    /// thread at all is runnable. Structurally identical to the prepared
    /// engine's `reschedule` — including the wake-before-pick order — so
    /// decision points and candidate sets line up exactly across engines.
    fn reschedule(&mut self, require_other: bool) -> bool {
        let n = self.threads.len();
        for i in 0..n {
            if let ThreadState::Blocked(target) = self.threads[i].state {
                if self.threads[target].state == ThreadState::Done {
                    self.threads[i].state = ThreadState::Runnable;
                }
            }
        }
        let threads = &self.threads;
        let sched = &mut *self.sched;
        match sched.pick(self.current, require_other, n, &|idx| {
            threads[idx].state == ThreadState::Runnable
        }) {
            Some(idx) => {
                if idx != self.current {
                    self.thread_switches += 1;
                }
                self.current = idx;
                true
            }
            None => false,
        }
    }

    #[inline]
    fn charge(&mut self, c: u64) -> Result<(), TrapKind> {
        self.cycles += c;
        self.instructions += 1;
        self.trigger.on_tick(self.cycles);
        if self.cycles >= self.next_switch {
            self.switch_bit = true;
            let behind = self.cycles - self.next_switch;
            self.next_switch = self
                .next_switch
                .saturating_add((behind / self.timeslice + 1).saturating_mul(self.timeslice));
        }
        if let Some(max) = self.max_cycles {
            if self.cycles > max {
                return Err(TrapKind::FuelExhausted(max));
            }
        }
        // The deterministic cancellation hook shares the fuel predicate
        // (checked second, so a tied budget wins), matching the prepared
        // engine charge for charge.
        if let Some(k) = self.cancel_after {
            if self.cycles > k {
                return Err(TrapKind::Cancelled);
            }
        }
        // Epoch poll, amortized over a fixed dispatch count. The
        // countdown only runs while a token is armed, so clean runs pay
        // one never-taken branch here.
        if let Some(t) = &self.cancel {
            self.poll_in -= 1;
            if self.poll_in == 0 {
                self.poll_in = NAIVE_POLL_INTERVAL;
                if t.fired() {
                    return Err(TrapKind::Cancelled);
                }
            }
        }
        Ok(())
    }

    #[inline]
    fn frame(&self) -> &Frame {
        self.threads[self.current]
            .frames
            .last()
            .expect("runnable thread has a frame")
    }

    #[inline]
    fn frame_mut(&mut self) -> &mut Frame {
        self.threads[self.current]
            .frames
            .last_mut()
            .expect("runnable thread has a frame")
    }

    #[inline]
    fn get(&self, l: LocalId) -> Value {
        self.frame().locals[l.index()]
    }

    #[inline]
    fn set(&mut self, l: LocalId, v: Value) {
        self.frame_mut().locals[l.index()] = v;
    }

    #[inline]
    fn advance(&mut self) {
        self.frame_mut().ip += 1;
    }

    /// Records a burst boundary at a firing check, naming the sample point
    /// by the same arena coordinates the prepared engine uses: the block's
    /// arena offset plus its instruction count (the inlined terminator).
    fn record_sample(&mut self, func: FuncId, block: BlockId, sample: BlockId, cont: BlockId) {
        let check_ip = self.block_starts[func.index()][block.index()]
            + self.module.function(func).block(block).insts().len() as u32;
        let back = &self.backedges[func.index()];
        self.sink.record(BurstRecord {
            thread: self.current as u32,
            func: func.index() as u32,
            check_ip,
            backedge: back.contains(&(block, sample)) || back.contains(&(block, cont)),
            len_instructions: self.instructions - self.last_sample_instructions,
            len_cycles: self.cycles - self.last_sample_cycles,
        });
        self.last_sample_instructions = self.instructions;
        self.last_sample_cycles = self.cycles;
    }

    fn goto(&mut self, to: BlockId) {
        let frame = self.frame();
        let from = frame.block;
        if self.backedges[frame.func.index()].contains(&(from, to)) {
            self.backedges_executed += 1;
        }
        let frame = self.frame_mut();
        frame.block = to;
        frame.ip = 0;
    }

    fn push_frame(
        &mut self,
        callee: FuncId,
        args: &[Value],
        ret_dst: Option<LocalId>,
        caller: Option<(FuncId, CallSiteId)>,
        thread: usize,
    ) -> Result<(), TrapKind> {
        if self.threads[thread].frames.len() >= self.max_stack {
            return Err(TrapKind::StackOverflow(self.max_stack));
        }
        let f = self.module.function(callee);
        debug_assert_eq!(f.arity(), args.len());
        let mut locals = vec![Value::Unit; f.num_locals()];
        locals[..args.len()].copy_from_slice(args);
        self.threads[thread].frames.push(Frame {
            func: callee,
            block: BlockId::new(0),
            ip: 0,
            locals,
            ret_dst,
            caller,
            path_reg: None,
        });
        self.entries_executed += 1;
        Ok(())
    }

    /// [`Machine::step`] wrapped in per-opcode attribution: the dispatched
    /// instruction or terminator is classified before the step and the
    /// clock delta across it recorded after, so a firing check's
    /// sample-switch surcharge and the partial charge of a trapping step
    /// land on the op that incurred them. This engine is the slow
    /// reference, so it affords the straightforward per-dispatch recording
    /// that the pre-decoded engine replaces with post-run slot-count
    /// folding — the differential tests hold the two to identical
    /// profiles. With [`NoMetrics`] this *is* `step()`.
    #[inline]
    fn profiled_step(&mut self) -> Result<Step, TrapKind> {
        if !P::ENABLED {
            return self.step();
        }
        let frame = self.frame();
        let b = self.module.function(frame.func).block(frame.block);
        let opcode = if frame.ip < b.insts().len() {
            opcode_of_inst(&b.insts()[frame.ip])
        } else {
            opcode_of_term(b.term())
        };
        let before = self.cycles;
        let result = self.step();
        self.psink
            .record_dispatches(opcode, 1, 1, self.cycles - before);
        result
    }

    fn step(&mut self) -> Result<Step, TrapKind> {
        let frame = self.frame();
        let func_id = frame.func;
        let block = frame.block;
        let ip = frame.ip;
        let f = self.module.function(func_id);
        let b = f.block(block);

        if ip < b.insts().len() {
            let inst = &b.insts()[ip];
            self.charge(self.cost.inst_cost(inst))?;
            return self.exec_inst(func_id, inst);
        }

        // Terminator.
        let term = b.term();
        self.charge(self.cost.term_cost(term))?;
        match term {
            Term::Jump(t) => self.goto(*t),
            Term::Br { cond, t, f } => {
                let c = self.get(*cond).as_bool()?;
                let target = if c { *t } else { *f };
                self.goto(target);
            }
            Term::Ret(v) => {
                let value = v.map(|l| self.get(l)).unwrap_or(Value::Unit);
                let frame = self.threads[self.current]
                    .frames
                    .pop()
                    .expect("ret pops the current frame");
                if self.threads[self.current].frames.is_empty() {
                    self.threads[self.current].state = ThreadState::Done;
                    return Ok(Step::SwitchRequested);
                }
                if let Some(dst) = frame.ret_dst {
                    self.set(dst, value);
                }
            }
            Term::Check { sample, cont } => {
                self.checks_executed += 1;
                let fire = self.trigger.on_check(self.current);
                if fire {
                    self.samples_taken += 1;
                    if S::ENABLED {
                        self.record_sample(func_id, block, *sample, *cont);
                    }
                    if P::ENABLED {
                        self.psink.record_sample(self.cycles, self.checks_executed);
                    }
                    // Jumping into cold duplicated code costs extra
                    // (instruction-cache effects, §4.4 footnote 6).
                    self.cycles += self.cost.sample_switch;
                    self.goto(*sample);
                } else {
                    self.goto(*cont);
                }
            }
        }
        Ok(Step::Ran)
    }

    fn exec_inst(&mut self, func_id: FuncId, inst: &Inst) -> Result<Step, TrapKind> {
        match inst {
            Inst::Const { dst, value } => {
                let v = match value {
                    isf_ir::Const::I64(n) => Value::I64(*n),
                    isf_ir::Const::Bool(b) => Value::Bool(*b),
                    isf_ir::Const::Null => Value::Null,
                };
                self.set(*dst, v);
            }
            Inst::Move { dst, src } => {
                let v = self.get(*src);
                self.set(*dst, v);
            }
            Inst::Un { op, dst, src } => {
                let v = Value::unary(*op, self.get(*src))?;
                self.set(*dst, v);
            }
            Inst::Bin { op, dst, lhs, rhs } => {
                let v = Value::binary(*op, self.get(*lhs), self.get(*rhs))?;
                self.set(*dst, v);
            }
            Inst::New { dst, class } => {
                let num_fields = self.module.class(*class).num_fields();
                let v = self.heap.alloc_object(*class, num_fields)?;
                self.set(*dst, v);
            }
            Inst::GetField { dst, obj, field } => {
                let o = self.get(*obj);
                let object = self.heap.object(o)?;
                let offset = self
                    .module
                    .class(object.class)
                    .field_offset(*field)
                    .ok_or_else(|| {
                        TrapKind::NoSuchField(self.module.field_name(*field).to_owned())
                    })?;
                let v = object.fields[offset];
                self.set(*dst, v);
            }
            Inst::SetField { obj, field, src } => {
                let o = self.get(*obj);
                let v = self.get(*src);
                let class = self.heap.object(o)?.class;
                let offset = self
                    .module
                    .class(class)
                    .field_offset(*field)
                    .ok_or_else(|| {
                        TrapKind::NoSuchField(self.module.field_name(*field).to_owned())
                    })?;
                self.heap.object_mut(o)?.fields[offset] = v;
            }
            Inst::NewArray { dst, len } => {
                let n = self.get(*len).as_i64()?;
                let v = self.heap.alloc_array(n)?;
                self.set(*dst, v);
            }
            Inst::ArrayGet { dst, arr, idx } => {
                let a = self.get(*arr);
                let i = self.get(*idx).as_i64()?;
                let v = self.heap.array_get(a, i)?;
                self.set(*dst, Value::I64(v));
            }
            Inst::ArraySet { arr, idx, src } => {
                let a = self.get(*arr);
                let i = self.get(*idx).as_i64()?;
                let v = self.get(*src).as_i64()?;
                self.heap.array_set(a, i, v)?;
            }
            Inst::ArrayLen { dst, arr } => {
                let a = self.get(*arr);
                let n = self.heap.array_len(a)?;
                self.set(*dst, Value::I64(n));
            }
            Inst::Call {
                dst,
                callee,
                args,
                site,
            } => {
                let mut vals = std::mem::take(&mut self.arg_scratch);
                vals.extend(args.iter().map(|a| self.get(*a)));
                self.advance();
                let r = self.push_frame(*callee, &vals, *dst, Some((func_id, *site)), self.current);
                vals.clear();
                self.arg_scratch = vals;
                r?;
                return Ok(Step::Ran);
            }
            Inst::CallMethod {
                dst,
                obj,
                method,
                args,
                site,
            } => {
                let o = self.get(*obj);
                let class = self.heap.object(o)?.class;
                let callee = self
                    .module
                    .class(class)
                    .resolve_method(*method)
                    .ok_or_else(|| {
                        TrapKind::NoSuchMethod(self.module.method_name(*method).to_owned())
                    })?;
                let expected = self.module.function(callee).arity();
                if expected != args.len() + 1 {
                    return Err(TrapKind::ArityMismatch {
                        method: self.module.function(callee).name().to_owned(),
                        given: args.len() + 1,
                        expected,
                    });
                }
                let mut vals = std::mem::take(&mut self.arg_scratch);
                vals.push(o);
                vals.extend(args.iter().map(|a| self.get(*a)));
                self.advance();
                let r = self.push_frame(callee, &vals, *dst, Some((func_id, *site)), self.current);
                vals.clear();
                self.arg_scratch = vals;
                r?;
                return Ok(Step::Ran);
            }
            Inst::Print { src } => {
                let v = self.get(*src);
                let n = match v {
                    Value::I64(n) => n,
                    Value::Bool(b) => i64::from(b),
                    other => {
                        return Err(TrapKind::TypeError {
                            expected: "printable value",
                            found: other.kind_name(),
                        })
                    }
                };
                self.output.push(n);
            }
            Inst::Spawn { dst, callee, args } => {
                let mut vals = std::mem::take(&mut self.arg_scratch);
                vals.extend(args.iter().map(|a| self.get(*a)));
                let tid = self.threads.len();
                self.threads.push(Thread {
                    frames: Vec::new(),
                    state: ThreadState::Runnable,
                });
                let r = self.push_frame(*callee, &vals, None, None, tid);
                vals.clear();
                self.arg_scratch = vals;
                r?;
                self.set(*dst, Value::Thread(tid as u32));
            }
            Inst::Join { thread } => {
                let t = match self.get(*thread) {
                    Value::Thread(t) => t as usize,
                    other => {
                        return Err(TrapKind::TypeError {
                            expected: "thread handle",
                            found: other.kind_name(),
                        })
                    }
                };
                if self.threads[t].state != ThreadState::Done {
                    self.threads[self.current].state = ThreadState::Blocked(t);
                    // Do not advance: the join re-executes when unblocked.
                    return Ok(Step::SwitchRequested);
                }
            }
            Inst::Yield => {
                self.yields_executed += 1;
                if self.switch_bit {
                    self.switch_bit = false;
                    self.advance();
                    return Ok(Step::SwitchRequested);
                }
            }
            Inst::Busy { .. } => {
                // The cost was already charged; nothing else happens.
            }
            Inst::Instr(op) => self.exec_instr_op(func_id, op)?,
        }
        self.advance();
        Ok(Step::Ran)
    }

    fn exec_instr_op(&mut self, func_id: FuncId, op: &InstrOp) -> Result<(), TrapKind> {
        match op {
            InstrOp::CallEdge => {
                // Examine the call stack (paper §4.2): the caller and the
                // call site were stashed in the frame at call time.
                if let Some((caller, site)) = self.frame().caller {
                    self.profile.record_call_edge(caller, site, func_id);
                }
            }
            InstrOp::FieldAccess { obj, field, write } => {
                let o = self.get(*obj);
                let class = self.heap.object(o)?.class;
                self.profile.record_field_access(class, *field, *write);
            }
            InstrOp::BlockCount { block } => {
                self.profile.record_block(func_id, *block);
            }
            InstrOp::EdgeCount { from, to } => {
                self.profile.record_edge(func_id, *from, *to);
            }
            InstrOp::PathStart { value } => {
                self.frame_mut().path_reg = Some(i64::from(*value));
            }
            InstrOp::PathIncr { delta } => {
                let d = i64::from(*delta);
                if let Some(r) = self.frame_mut().path_reg.as_mut() {
                    *r += d;
                }
            }
            InstrOp::PathEnd { site } => {
                let site = *site;
                if let Some(id) = self.frame_mut().path_reg.take() {
                    self.profile.record_path(func_id, site, id);
                }
            }
            InstrOp::ValueProfile { local, site } => {
                let v = match self.get(*local) {
                    Value::I64(n) => n,
                    Value::Bool(b) => i64::from(b),
                    // Reference values are profiled by identity.
                    Value::Obj(h) | Value::Arr(h) | Value::Thread(h) => i64::from(h),
                    Value::Null => -1,
                    Value::Unit => 0,
                };
                self.profile.record_value(func_id, *site, v);
            }
        }
        Ok(())
    }
}
