//! Runtime values.

use std::fmt;

use isf_ir::{BinOp, UnOp};

use crate::error::TrapKind;

/// A runtime value. All values are word-sized and `Copy`; objects, arrays
/// and threads are handles into the [`crate::Heap`] / scheduler.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub enum Value {
    /// A 64-bit signed integer.
    I64(i64),
    /// A boolean.
    Bool(bool),
    /// The null reference.
    Null,
    /// An object handle.
    Obj(u32),
    /// An array handle.
    Arr(u32),
    /// A green-thread handle.
    Thread(u32),
    /// The unit value (uninitialized locals, void returns).
    #[default]
    Unit,
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::I64(v) => write!(f, "{v}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Null => write!(f, "null"),
            Value::Obj(h) => write!(f, "obj#{h}"),
            Value::Arr(h) => write!(f, "arr#{h}"),
            Value::Thread(h) => write!(f, "thread#{h}"),
            Value::Unit => write!(f, "unit"),
        }
    }
}

impl Value {
    /// Extracts an integer.
    pub fn as_i64(self) -> Result<i64, TrapKind> {
        match self {
            Value::I64(v) => Ok(v),
            other => Err(TrapKind::TypeError {
                expected: "integer",
                found: other.kind_name(),
            }),
        }
    }

    /// Extracts a boolean.
    pub fn as_bool(self) -> Result<bool, TrapKind> {
        match self {
            Value::Bool(b) => Ok(b),
            other => Err(TrapKind::TypeError {
                expected: "boolean",
                found: other.kind_name(),
            }),
        }
    }

    /// A short name for the value's kind, used in trap messages.
    pub fn kind_name(self) -> &'static str {
        match self {
            Value::I64(_) => "integer",
            Value::Bool(_) => "boolean",
            Value::Null => "null",
            Value::Obj(_) => "object",
            Value::Arr(_) => "array",
            Value::Thread(_) => "thread",
            Value::Unit => "unit",
        }
    }

    /// Applies a unary operator.
    pub fn unary(op: UnOp, v: Value) -> Result<Value, TrapKind> {
        match op {
            UnOp::Neg => Ok(Value::I64(v.as_i64()?.wrapping_neg())),
            UnOp::Not => Ok(Value::Bool(!v.as_bool()?)),
        }
    }

    /// Applies a binary operator. Arithmetic wraps; division and remainder
    /// by zero trap; `==`/`!=` compare any two values of the same kind;
    /// the orderings require integers.
    pub fn binary(op: BinOp, a: Value, b: Value) -> Result<Value, TrapKind> {
        use BinOp::*;
        Ok(match op {
            Add => Value::I64(a.as_i64()?.wrapping_add(b.as_i64()?)),
            Sub => Value::I64(a.as_i64()?.wrapping_sub(b.as_i64()?)),
            Mul => Value::I64(a.as_i64()?.wrapping_mul(b.as_i64()?)),
            Div => {
                let d = b.as_i64()?;
                if d == 0 {
                    return Err(TrapKind::DivisionByZero);
                }
                Value::I64(a.as_i64()?.wrapping_div(d))
            }
            Rem => {
                let d = b.as_i64()?;
                if d == 0 {
                    return Err(TrapKind::DivisionByZero);
                }
                Value::I64(a.as_i64()?.wrapping_rem(d))
            }
            And => Value::I64(a.as_i64()? & b.as_i64()?),
            Or => Value::I64(a.as_i64()? | b.as_i64()?),
            Xor => Value::I64(a.as_i64()? ^ b.as_i64()?),
            Shl => Value::I64(a.as_i64()?.wrapping_shl(b.as_i64()? as u32)),
            Shr => Value::I64(a.as_i64()?.wrapping_shr(b.as_i64()? as u32)),
            Eq => Value::Bool(a == b),
            Ne => Value::Bool(a != b),
            Lt => Value::Bool(a.as_i64()? < b.as_i64()?),
            Le => Value::Bool(a.as_i64()? <= b.as_i64()?),
            Gt => Value::Bool(a.as_i64()? > b.as_i64()?),
            Ge => Value::Bool(a.as_i64()? >= b.as_i64()?),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_wraps() {
        let v = Value::binary(BinOp::Add, Value::I64(i64::MAX), Value::I64(1)).unwrap();
        assert_eq!(v, Value::I64(i64::MIN));
    }

    #[test]
    fn division_by_zero_traps() {
        assert_eq!(
            Value::binary(BinOp::Div, Value::I64(1), Value::I64(0)),
            Err(TrapKind::DivisionByZero)
        );
        assert_eq!(
            Value::binary(BinOp::Rem, Value::I64(1), Value::I64(0)),
            Err(TrapKind::DivisionByZero)
        );
    }

    #[test]
    fn equality_works_across_kinds() {
        assert_eq!(
            Value::binary(BinOp::Eq, Value::Null, Value::Null).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            Value::binary(BinOp::Ne, Value::Obj(1), Value::Obj(2)).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            Value::binary(BinOp::Eq, Value::I64(0), Value::Null).unwrap(),
            Value::Bool(false)
        );
    }

    #[test]
    fn ordering_requires_integers() {
        let e = Value::binary(BinOp::Lt, Value::Bool(true), Value::I64(0)).unwrap_err();
        assert!(matches!(e, TrapKind::TypeError { .. }));
    }

    #[test]
    fn unary_ops() {
        assert_eq!(
            Value::unary(UnOp::Neg, Value::I64(5)).unwrap(),
            Value::I64(-5)
        );
        assert_eq!(
            Value::unary(UnOp::Not, Value::Bool(false)).unwrap(),
            Value::Bool(true)
        );
        assert!(Value::unary(UnOp::Not, Value::I64(1)).is_err());
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::I64(3).to_string(), "3");
        assert_eq!(Value::Null.to_string(), "null");
        assert_eq!(Value::Arr(7).to_string(), "arr#7");
    }
}
