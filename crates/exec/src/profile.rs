//! Per-opcode dispatch profiling.
//!
//! Where [`crate::trace`] observes *sampling* (one record per firing
//! check), this module observes *dispatch*: every executed op, classified
//! by a stable opcode index, with its source-instruction width and the
//! simulated cycles it consumed. A [`ProfileSink`] receives
//! `record_dispatches` calls covering every dispatch and one
//! `record_sample` per taken sample, from both the pre-decoded engine
//! ([`crate::run_prepared_profiled`]) and the tree-walking reference
//! ([`crate::run_naive_profiled`]).
//!
//! # Zero cost when off
//!
//! The sink follows the [`crate::TraceSink`] pattern exactly: a
//! compile-time parameter of the interpreter loop, with [`NoMetrics`]
//! setting [`ProfileSink::ENABLED`] to `false` so every recording site is
//! compiled away from the monomorphized unprofiled loop — the one
//! [`crate::run`] and [`crate::run_prepared`] execute. The
//! `interp_dispatch/profiled` bench pins the *enabled* cost at ≤5% over
//! the unprofiled prepared engine.
//!
//! # The opcode index space
//!
//! Opcodes `0..`[`FIRST_STATIC`] are the plain decoded forms shared by
//! both engines; the tree-walking reference classifies its `Inst`/`Term`
//! dispatches into the same indices, so a naive profile is directly
//! comparable — and, by the differential tests, identical — to an
//! unfused prepared profile of the same run. Indices
//! [`FIRST_STATIC`]`..`[`FIRST_FUSED`] are the statically-resolved forms
//! and [`FIRST_FUSED`]`..`[`OPC_GAP`] the fused superinstructions, both
//! produced only by fusing preparation (`FuseMode::Fuse`, or
//! `FuseMode::Guided` which additionally emits the generalized
//! [`OPC_GUIDED`] template from a warmup profile's [`FuseGuidance`]).
//!
//! # Exactness, cheaply
//!
//! Cycle attribution is exact — per-opcode totals sum to the run's cycle
//! count, traps included — but the two engines get there differently.
//! The tree-walking reference records the clock delta across every
//! dispatch. The prepared engine's hot loop does nothing but bump an
//! execution counter per arena slot (every other profiled quantity is
//! statically determined by the slot: its opcode, width, and full cycle
//! charge including mid-arm `extra`s); after the run, a fold
//! reconstructs the per-opcode totals from the counts, the firing-check
//! counts (the sample-switch surcharge is the one data-dependent
//! charge), and the trapping dispatch's charge shortfall. That keeps the
//! enabled overhead within the ≤5% budget the
//! `interp_dispatch/profiled` bench enforces.

use isf_ir::{Inst, InstrOp, Term};

// The plain decoded forms (also the tree-walking engine's dispatch set).
pub(crate) const OPC_CONST: usize = 0;
pub(crate) const OPC_MOVE: usize = 1;
pub(crate) const OPC_UN: usize = 2;
pub(crate) const OPC_BIN: usize = 3;
pub(crate) const OPC_NEW: usize = 4;
pub(crate) const OPC_GET_FIELD: usize = 5;
pub(crate) const OPC_SET_FIELD: usize = 6;
pub(crate) const OPC_NEW_ARRAY: usize = 7;
pub(crate) const OPC_ARRAY_GET: usize = 8;
pub(crate) const OPC_ARRAY_SET: usize = 9;
pub(crate) const OPC_ARRAY_LEN: usize = 10;
pub(crate) const OPC_CALL: usize = 11;
pub(crate) const OPC_CALL_METHOD: usize = 12;
pub(crate) const OPC_PRINT: usize = 13;
pub(crate) const OPC_SPAWN: usize = 14;
pub(crate) const OPC_JOIN: usize = 15;
pub(crate) const OPC_YIELD: usize = 16;
pub(crate) const OPC_BUSY: usize = 17;
pub(crate) const OPC_CALL_EDGE: usize = 18;
pub(crate) const OPC_FIELD_ACCESS_PROF: usize = 19;
pub(crate) const OPC_BLOCK_COUNT: usize = 20;
pub(crate) const OPC_EDGE_COUNT: usize = 21;
pub(crate) const OPC_VALUE_PROFILE: usize = 22;
pub(crate) const OPC_PATH_START: usize = 23;
pub(crate) const OPC_PATH_INCR: usize = 24;
pub(crate) const OPC_PATH_END: usize = 25;
pub(crate) const OPC_JUMP: usize = 26;
pub(crate) const OPC_BR: usize = 27;
pub(crate) const OPC_RET: usize = 28;
pub(crate) const OPC_CHECK: usize = 29;
// Statically-resolved forms (prepare-time slot/vtable resolution).
pub(crate) const OPC_GET_FIELD_STATIC: usize = 30;
pub(crate) const OPC_SET_FIELD_STATIC: usize = 31;
pub(crate) const OPC_CALL_METHOD_STATIC: usize = 32;
// Fused superinstructions.
pub(crate) const OPC_BIN_IMM: usize = 33;
pub(crate) const OPC_BR_CMP: usize = 34;
pub(crate) const OPC_BR_CMP_IMM: usize = 35;
pub(crate) const OPC_ARRAY_GET_IMM: usize = 36;
pub(crate) const OPC_ARRAY_SET_IMM: usize = 37;
pub(crate) const OPC_ARRAY_SET_IMM2: usize = 38;
pub(crate) const OPC_CONST_SET_FIELD: usize = 39;
pub(crate) const OPC_GET_FIELD_BIN: usize = 40;
pub(crate) const OPC_BIN_SET_FIELD: usize = 41;
pub(crate) const OPC_BIN_IMM_SET_FIELD: usize = 42;
pub(crate) const OPC_GET_FIELD_BIN_IMM: usize = 43;
pub(crate) const OPC_GET_FIELD_BIN_IMM_SET_FIELD: usize = 44;
pub(crate) const OPC_GET_FIELD_BR_CMP: usize = 45;
pub(crate) const OPC_GET_FIELD_ARRAY_GET: usize = 46;
pub(crate) const OPC_GET_FIELD_ARRAY_SET: usize = 47;
pub(crate) const OPC_MOVE_RUN: usize = 48;
pub(crate) const OPC_JUMP_INSTR: usize = 49;
/// The generalized profile-guided fusion template (`FuseMode::Guided`):
/// one dispatch executing a mined run of two or three plain components.
pub(crate) const OPC_GUIDED: usize = 50;
pub(crate) const OPC_GAP: usize = 51;

/// First statically-resolved opcode index: opcodes below this are the
/// plain decoded forms shared with the tree-walking reference engine.
pub const FIRST_STATIC: usize = OPC_GET_FIELD_STATIC;

/// First fused-superinstruction opcode index.
pub const FIRST_FUSED: usize = OPC_BIN_IMM;

/// Size of the opcode index space (every dispatchable form, both engines).
pub const NUM_OPCODES: usize = OPC_GAP + 1;

/// Display name per opcode index, parallel to the `OPC_*` constants.
pub const OPCODE_NAMES: [&str; NUM_OPCODES] = [
    "const",
    "move",
    "un",
    "bin",
    "new",
    "get-field",
    "set-field",
    "new-array",
    "array-get",
    "array-set",
    "array-len",
    "call",
    "call-method",
    "print",
    "spawn",
    "join",
    "yield",
    "busy",
    "call-edge",
    "field-access-prof",
    "block-count",
    "edge-count",
    "value-profile",
    "path-start",
    "path-incr",
    "path-end",
    "jump",
    "br",
    "ret",
    "check",
    "get-field-static",
    "set-field-static",
    "call-method-static",
    "bin-imm",
    "br-cmp",
    "br-cmp-imm",
    "array-get-imm",
    "array-set-imm",
    "array-set-imm2",
    "const-set-field",
    "get-field-bin",
    "bin-set-field",
    "bin-imm-set-field",
    "get-field-bin-imm",
    "get-field-bin-imm-set-field",
    "get-field-br-cmp",
    "get-field-array-get",
    "get-field-array-set",
    "move-run",
    "jump-instr",
    "guided",
    "gap",
];

/// Whether opcode `op` is a fused superinstruction — a single dispatch
/// executing more than one source instruction. The statically-resolved
/// forms (`get-field-static` &c.) are *not* fused: they dispatch one
/// source instruction each.
#[must_use]
pub const fn opcode_is_fused(op: usize) -> bool {
    FIRST_FUSED <= op && op < OPC_GAP
}

/// The opcode index the tree-walking engine attributes an instruction
/// dispatch to — by construction the index the unfused prepared decode
/// assigns the same instruction.
pub(crate) fn opcode_of_inst(inst: &Inst) -> usize {
    match inst {
        Inst::Const { .. } => OPC_CONST,
        Inst::Move { .. } => OPC_MOVE,
        Inst::Un { .. } => OPC_UN,
        Inst::Bin { .. } => OPC_BIN,
        Inst::New { .. } => OPC_NEW,
        Inst::GetField { .. } => OPC_GET_FIELD,
        Inst::SetField { .. } => OPC_SET_FIELD,
        Inst::NewArray { .. } => OPC_NEW_ARRAY,
        Inst::ArrayGet { .. } => OPC_ARRAY_GET,
        Inst::ArraySet { .. } => OPC_ARRAY_SET,
        Inst::ArrayLen { .. } => OPC_ARRAY_LEN,
        Inst::Call { .. } => OPC_CALL,
        Inst::CallMethod { .. } => OPC_CALL_METHOD,
        Inst::Print { .. } => OPC_PRINT,
        Inst::Spawn { .. } => OPC_SPAWN,
        Inst::Join { .. } => OPC_JOIN,
        Inst::Yield => OPC_YIELD,
        Inst::Busy { .. } => OPC_BUSY,
        Inst::Instr(op) => match op {
            InstrOp::CallEdge => OPC_CALL_EDGE,
            InstrOp::FieldAccess { .. } => OPC_FIELD_ACCESS_PROF,
            InstrOp::BlockCount { .. } => OPC_BLOCK_COUNT,
            InstrOp::EdgeCount { .. } => OPC_EDGE_COUNT,
            InstrOp::ValueProfile { .. } => OPC_VALUE_PROFILE,
            InstrOp::PathStart { .. } => OPC_PATH_START,
            InstrOp::PathIncr { .. } => OPC_PATH_INCR,
            InstrOp::PathEnd { .. } => OPC_PATH_END,
        },
    }
}

/// The opcode index the tree-walking engine attributes a terminator
/// dispatch to.
pub(crate) fn opcode_of_term(term: &Term) -> usize {
    match term {
        Term::Jump(_) => OPC_JUMP,
        Term::Br { .. } => OPC_BR,
        Term::Ret(_) => OPC_RET,
        Term::Check { .. } => OPC_CHECK,
    }
}

/// Observer of per-dispatch execution, chosen at compile time by the
/// `*_profiled` / `*_observed` entry points.
pub trait ProfileSink {
    /// Whether this sink records anything. When `false` (see
    /// [`NoMetrics`]), the interpreter's recording sites compile away
    /// entirely.
    const ENABLED: bool = true;

    /// Adds `dispatches` executions of opcode `opcode`
    /// (`< `[`NUM_OPCODES`]), covering `instructions` source instructions
    /// and `cycles` simulated cycles in total.
    ///
    /// The tree-walking engine calls this once per dispatch with
    /// `(opcode, 1, 1, clock delta)`. The prepared engine keeps only a
    /// bare execution counter per arena slot on the hot path and calls
    /// this once per executed *slot* after the run, with the slot's count
    /// and its statically-reconstructed instruction and cycle totals —
    /// mid-arm `extra` charges, firing checks' sample-switch surcharges
    /// and a trapping final dispatch's partial charge all included, so
    /// the two engines report identical profiles for equivalent runs.
    fn record_dispatches(&mut self, opcode: usize, dispatches: u64, instructions: u64, cycles: u64);

    /// Called once per taken sample, with the absolute simulated clock and
    /// check count at the firing check (before the sample-switch
    /// surcharge), mirroring [`crate::TraceSink::record`]'s position.
    fn record_sample(&mut self, cycles: u64, checks: u64);
}

/// The disabled sink: records nothing, costs nothing. [`crate::run`],
/// [`crate::run_prepared`] and the `*_traced` entry points execute the
/// loop monomorphized over this type.
#[derive(Copy, Clone, Debug, Default)]
pub struct NoMetrics;

impl ProfileSink for NoMetrics {
    const ENABLED: bool = false;

    #[inline(always)]
    fn record_dispatches(
        &mut self,
        _opcode: usize,
        _dispatches: u64,
        _instructions: u64,
        _cycles: u64,
    ) {
    }

    #[inline(always)]
    fn record_sample(&mut self, _cycles: u64, _checks: u64) {}
}

/// One opcode's accumulated dispatch row: count, instructions and cycles
/// kept adjacent so a `record_dispatches` touches one cache line.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
struct OpRow {
    count: u64,
    instructions: u64,
    cycles: u64,
}

/// A collecting [`ProfileSink`]: per-opcode dispatch counts, source
/// instructions and cycle attribution, plus the raw inter-sample-gap and
/// checks-per-sample series the harness bins into its trigger-skew
/// histograms.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OpProfile {
    rows: [OpRow; NUM_OPCODES],
    sample_gap_cycles: Vec<u64>,
    checks_per_sample: Vec<u64>,
    last_sample_cycles: u64,
    last_sample_checks: u64,
}

impl Default for OpProfile {
    fn default() -> Self {
        OpProfile {
            rows: [OpRow::default(); NUM_OPCODES],
            sample_gap_cycles: Vec::new(),
            checks_per_sample: Vec::new(),
            last_sample_cycles: 0,
            last_sample_checks: 0,
        }
    }
}

impl OpProfile {
    /// An empty profile.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Dispatch count of opcode `op`.
    #[must_use]
    pub fn count(&self, op: usize) -> u64 {
        self.rows[op].count
    }

    /// Source instructions executed under opcode `op` (width-weighted
    /// dispatch count; exceeds [`OpProfile::count`] for superinstructions).
    #[must_use]
    pub fn instructions(&self, op: usize) -> u64 {
        self.rows[op].instructions
    }

    /// Simulated cycles attributed to opcode `op`.
    #[must_use]
    pub fn cycles(&self, op: usize) -> u64 {
        self.rows[op].cycles
    }

    /// Total hot-loop dispatches.
    #[must_use]
    pub fn total_dispatches(&self) -> u64 {
        self.rows.iter().map(|r| r.count).sum()
    }

    /// Total source instructions (equals the run's `Outcome::instructions`).
    #[must_use]
    pub fn total_instructions(&self) -> u64 {
        self.rows.iter().map(|r| r.instructions).sum()
    }

    /// Total attributed cycles (equals the run's `Outcome::cycles`).
    #[must_use]
    pub fn total_cycles(&self) -> u64 {
        self.rows.iter().map(|r| r.cycles).sum()
    }

    /// Dispatches that executed a fused superinstruction.
    #[must_use]
    pub fn fused_dispatches(&self) -> u64 {
        (0..NUM_OPCODES)
            .filter(|&op| opcode_is_fused(op))
            .map(|op| self.rows[op].count)
            .sum()
    }

    /// Source instructions executed *as part of* a fused superinstruction.
    #[must_use]
    pub fn fused_instructions(&self) -> u64 {
        (0..NUM_OPCODES)
            .filter(|&op| opcode_is_fused(op))
            .map(|op| self.rows[op].instructions)
            .sum()
    }

    /// Source instructions executed through the generalized profile-guided
    /// template ([`OPC_GUIDED`]) — a subset of
    /// [`OpProfile::fused_instructions`], nonzero only for modules
    /// prepared under `FuseMode::Guided`.
    #[must_use]
    pub fn guided_instructions(&self) -> u64 {
        self.rows[OPC_GUIDED].instructions
    }

    /// Fusion coverage: percentage of dynamic source instructions executed
    /// under a fused superinstruction dispatch (0 when nothing ran).
    #[must_use]
    pub fn fusion_coverage_pct(&self) -> f64 {
        let total = self.total_instructions();
        if total == 0 {
            return 0.0;
        }
        self.fused_instructions() as f64 / total as f64 * 100.0
    }

    /// Cycle gaps between consecutive taken samples (first entry measures
    /// from the start of the run), in execution order.
    #[must_use]
    pub fn sample_gap_cycles(&self) -> &[u64] {
        &self.sample_gap_cycles
    }

    /// Checks executed between consecutive taken samples (inclusive of the
    /// firing check), in execution order.
    #[must_use]
    pub fn checks_per_sample(&self) -> &[u64] {
        &self.checks_per_sample
    }

    /// Opcodes that were dispatched at least once, as
    /// `(opcode, name, dispatches, instructions, cycles)` rows in index
    /// order.
    pub fn nonzero(&self) -> impl Iterator<Item = (usize, &'static str, u64, u64, u64)> + '_ {
        (0..NUM_OPCODES).filter_map(move |op| {
            let row = &self.rows[op];
            (row.count > 0).then_some((
                op,
                OPCODE_NAMES[op],
                row.count,
                row.instructions,
                row.cycles,
            ))
        })
    }

    /// Merges another profile's counts and series into this one.
    pub fn merge(&mut self, other: &OpProfile) {
        for op in 0..NUM_OPCODES {
            self.rows[op].count += other.rows[op].count;
            self.rows[op].instructions += other.rows[op].instructions;
            self.rows[op].cycles += other.rows[op].cycles;
        }
        self.sample_gap_cycles.extend(&other.sample_gap_cycles);
        self.checks_per_sample.extend(&other.checks_per_sample);
    }
}

/// Per-opcode dispatch weights distilled from a warmup [`OpProfile`] —
/// the input to profile-guided fusion (`FuseMode::Guided`).
///
/// Only the unfused rows (below [`FIRST_FUSED`]) carry weight: under a
/// statically-fused warmup those rows are exactly the remainder the fixed
/// template catalogue failed to cover, so the guided pass chases the ops
/// that actually dispatched. Weights are *opcode-keyed*, not slot-keyed;
/// the guided preparation pass combines them with the static op arenas to
/// rank candidate sequences per function (see `mine_hot_sequences`).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct FuseGuidance {
    weights: [u64; FIRST_FUSED],
}

impl Default for FuseGuidance {
    fn default() -> Self {
        FuseGuidance {
            weights: [0; FIRST_FUSED],
        }
    }
}

impl FuseGuidance {
    /// Distills guidance from a warmup profile: the dispatch count of
    /// every plain (unfused) opcode.
    #[must_use]
    pub fn from_profile(profile: &OpProfile) -> Self {
        let mut weights = [0u64; FIRST_FUSED];
        for (op, w) in weights.iter_mut().enumerate() {
            *w = profile.count(op);
        }
        FuseGuidance { weights }
    }

    /// The warmup dispatch count of plain opcode `op` (0 for fused or
    /// out-of-range indices).
    #[must_use]
    pub fn weight(&self, op: usize) -> u64 {
        self.weights.get(op).copied().unwrap_or(0)
    }

    /// Total warmup dispatches across all plain opcodes.
    #[must_use]
    pub fn total_weight(&self) -> u64 {
        self.weights.iter().sum()
    }

    /// Whether the warmup saw no plain dispatches at all (guided fusion
    /// then has nothing to rank and degrades to cold-sequence fusion).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.weights.iter().all(|&w| w == 0)
    }
}

impl ProfileSink for OpProfile {
    #[inline]
    fn record_dispatches(
        &mut self,
        opcode: usize,
        dispatches: u64,
        instructions: u64,
        cycles: u64,
    ) {
        let row = &mut self.rows[opcode];
        row.count += dispatches;
        row.instructions += instructions;
        row.cycles += cycles;
    }

    fn record_sample(&mut self, cycles: u64, checks: u64) {
        self.sample_gap_cycles
            .push(cycles - self.last_sample_cycles);
        self.checks_per_sample
            .push(checks - self.last_sample_checks);
        self.last_sample_cycles = cycles;
        self.last_sample_checks = checks;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_metrics_is_statically_disabled() {
        const { assert!(!NoMetrics::ENABLED) };
        const { assert!(OpProfile::ENABLED) };
    }

    #[test]
    fn opcode_tables_are_consistent() {
        assert_eq!(OPCODE_NAMES.len(), NUM_OPCODES);
        assert!(!opcode_is_fused(OPC_CONST));
        assert!(!opcode_is_fused(OPC_GET_FIELD_STATIC));
        assert!(!opcode_is_fused(OPC_CALL_METHOD_STATIC));
        assert!(opcode_is_fused(OPC_BIN_IMM));
        assert!(opcode_is_fused(OPC_JUMP_INSTR));
        assert!(!opcode_is_fused(OPC_GAP));
        // Names are unique.
        let mut names: Vec<&str> = OPCODE_NAMES.to_vec();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), NUM_OPCODES);
    }

    #[test]
    fn profile_accumulates_and_merges() {
        let mut p = OpProfile::new();
        p.record_dispatches(OPC_BIN, 1, 1, 3);
        p.record_dispatches(OPC_BIN, 1, 1, 3);
        p.record_dispatches(OPC_BR_CMP, 1, 3, 7);
        p.record_sample(100, 4);
        p.record_sample(250, 9);
        assert_eq!(p.count(OPC_BIN), 2);
        assert_eq!(p.cycles(OPC_BIN), 6);
        assert_eq!(p.instructions(OPC_BR_CMP), 3);
        assert_eq!(p.total_dispatches(), 3);
        assert_eq!(p.total_instructions(), 5);
        assert_eq!(p.fused_instructions(), 3);
        assert_eq!(p.fused_dispatches(), 1);
        assert!((p.fusion_coverage_pct() - 60.0).abs() < 1e-9);
        assert_eq!(p.sample_gap_cycles(), &[100, 150]);
        assert_eq!(p.checks_per_sample(), &[4, 5]);

        let mut q = OpProfile::new();
        q.record_dispatches(OPC_BIN, 1, 1, 3);
        q.merge(&p);
        assert_eq!(q.count(OPC_BIN), 3);
        assert_eq!(q.sample_gap_cycles().len(), 2);
        let rows: Vec<_> = q.nonzero().collect();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].1, "bin");
    }
}
