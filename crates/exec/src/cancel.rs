//! Cooperative cancellation: an `Arc`'d atomic epoch both engines poll
//! at points they already visit, raising [`TrapKind::Cancelled`] so a
//! cancelled run stops with a well-defined error instead of being killed.
//!
//! The design mirrors the budget traps of `ExecLimits`: cancellation is
//! not preemption. The prepared engine polls at block entries (the same
//! control-transfer funnel the profiler counts flow at), the naive engine
//! every [`NAIVE_POLL_INTERVAL`] dispatches, so a cancelled run stops at
//! the next control transfer — fused, guided, unfused and naive alike —
//! and unwinds through the ordinary trap path with an accurate partial
//! profile.
//!
//! A [`CancelToken`] is an epoch counter, not a flag: a watchdog that
//! captured the epoch when a cell *started* can only cancel that same
//! cell ([`CancelToken::cancel_from`] is a compare-and-swap), so a stale
//! timer firing after the cell finished — and after the worker moved on —
//! cannot kill the cell that reused the thread.
//!
//! Tokens are armed per worker thread ([`arm`]) rather than carried in
//! `VmConfig`: the config is `Copy` and its `Debug` form feeds run
//! fingerprints, while a token is identity, not configuration. The
//! engines snapshot the armed state once at machine construction, so the
//! hot loop never touches thread-local storage; with nothing armed the
//! polls are a never-taken branch on a plain `Option` and clean runs are
//! byte-identical to a build without the subsystem.
//!
//! Wall-clock cancellation is inherently nondeterministic, so tests use
//! the deterministic half of [`arm`]: `cancel_after` raises
//! [`TrapKind::Cancelled`] at exactly the charge that takes the clock
//! past the given cycle count — the same predicate, at the same points,
//! as a `max_cycles` fuel trap — making cancellation-at-cycle-K runs
//! exactly reproducible and differentially testable against fuel traps.
//!
//! [`TrapKind::Cancelled`]: crate::TrapKind::Cancelled

use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// How many naive-engine dispatches pass between epoch polls. The naive
/// engine has no cheap control-transfer funnel (every transfer re-derives
/// targets through the module), so it amortizes the atomic load over a
/// fixed dispatch count instead.
pub const NAIVE_POLL_INTERVAL: u32 = 1024;

/// A shared cancellation epoch. Clones observe the same epoch; see the
/// module docs for the arming and polling contract.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    epoch: Arc<AtomicU64>,
}

impl CancelToken {
    /// A fresh token at epoch 0, not yet cancelled.
    pub fn new() -> Self {
        Self::default()
    }

    /// The current epoch, to be captured alongside [`arm`] and passed to
    /// [`CancelToken::cancel_from`] by whoever may cancel later.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Relaxed)
    }

    /// Cancels unconditionally by advancing the epoch. Every engine armed
    /// with this token at the previous epoch traps at its next poll.
    pub fn cancel(&self) {
        self.epoch.fetch_add(1, Ordering::Relaxed);
    }

    /// Cancels only if the epoch still equals `snapshot` — the epoch a
    /// watchdog captured when its deadline started. Returns whether the
    /// cancellation landed; `false` means the epoch had already moved on
    /// (the run finished and the token was re-armed), so the stale fire
    /// hit nothing.
    pub fn cancel_from(&self, snapshot: u64) -> bool {
        self.epoch
            .compare_exchange(
                snapshot,
                snapshot.wrapping_add(1),
                Ordering::Relaxed,
                Ordering::Relaxed,
            )
            .is_ok()
    }

    /// Whether the epoch has moved past `snapshot`.
    pub fn is_cancelled(&self, snapshot: u64) -> bool {
        self.epoch.load(Ordering::Relaxed) != snapshot
    }
}

/// A token plus the epoch at arming time: what the engines actually poll.
#[derive(Clone)]
pub(crate) struct ArmedToken {
    epoch: Arc<AtomicU64>,
    snapshot: u64,
}

impl ArmedToken {
    /// Whether the token was cancelled since arming. One relaxed atomic
    /// load; the poll sites are cheap enough that ordering stricter than
    /// `Relaxed` would buy nothing (the trap path synchronizes through
    /// the unwind, not the flag).
    #[inline]
    pub(crate) fn fired(&self) -> bool {
        self.epoch.load(Ordering::Relaxed) != self.snapshot
    }
}

thread_local! {
    static ARMED_TOKEN: RefCell<Option<ArmedToken>> = const { RefCell::new(None) };
    static CANCEL_AFTER: Cell<Option<u64>> = const { Cell::new(None) };
}

/// Arms cancellation for machines constructed on the current thread until
/// the returned guard drops: an optional shared `token` (polled at block
/// entries / every-N dispatches) and an optional deterministic
/// `cancel_after` cycle count (checked at every cycle charge, exactly
/// where a fuel budget would trap). The guard restores the previous
/// arming on drop — including across unwinds, so a panicking or trapping
/// cell cannot leak its token into the next cell run on the same worker.
#[must_use = "cancellation is only armed while the scope is alive"]
pub fn arm(token: Option<&CancelToken>, cancel_after: Option<u64>) -> CancelScope {
    let armed = token.map(|t| ArmedToken {
        epoch: Arc::clone(&t.epoch),
        snapshot: t.epoch(),
    });
    let prev_token = ARMED_TOKEN.with(|s| s.replace(armed));
    let prev_after = CANCEL_AFTER.with(|s| s.replace(cancel_after));
    CancelScope {
        prev_token,
        prev_after,
    }
}

/// RAII guard returned by [`arm`]; restores the previously armed state.
pub struct CancelScope {
    prev_token: Option<ArmedToken>,
    prev_after: Option<u64>,
}

impl Drop for CancelScope {
    fn drop(&mut self) {
        ARMED_TOKEN.with(|s| *s.borrow_mut() = self.prev_token.take());
        CANCEL_AFTER.with(|s| s.set(self.prev_after.take()));
    }
}

/// The armed token snapshot for a machine being constructed now.
pub(crate) fn armed_token() -> Option<ArmedToken> {
    ARMED_TOKEN.with(|s| s.borrow().clone())
}

/// The armed deterministic cancellation point, if any.
pub(crate) fn armed_after() -> Option<u64> {
    CANCEL_AFTER.with(|s| s.get())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cancel_from_only_lands_on_the_captured_epoch() {
        let t = CancelToken::new();
        let snapshot = t.epoch();
        assert!(!t.is_cancelled(snapshot));
        assert!(t.cancel_from(snapshot), "first fire lands");
        assert!(t.is_cancelled(snapshot));
        // A stale watchdog holding the old snapshot cannot cancel the
        // next run's epoch.
        assert!(!t.cancel_from(snapshot), "stale fire must miss");
        let next = t.epoch();
        assert!(!t.is_cancelled(next));
    }

    #[test]
    fn arm_is_scoped_and_nestable() {
        assert!(armed_token().is_none());
        assert_eq!(armed_after(), None);
        let outer_token = CancelToken::new();
        {
            let _outer = arm(Some(&outer_token), Some(10));
            assert!(armed_token().is_some());
            assert_eq!(armed_after(), Some(10));
            {
                let _inner = arm(None, Some(7));
                assert!(armed_token().is_none(), "inner scope shadows the token");
                assert_eq!(armed_after(), Some(7));
            }
            assert!(armed_token().is_some(), "outer arming restored");
            assert_eq!(armed_after(), Some(10));
        }
        assert!(armed_token().is_none());
        assert_eq!(armed_after(), None);
    }

    #[test]
    fn scope_restores_across_unwind() {
        let t = CancelToken::new();
        let r = std::panic::catch_unwind(|| {
            let _scope = arm(Some(&t), Some(5));
            panic!("cell died");
        });
        assert!(r.is_err());
        assert!(armed_token().is_none(), "unwind must disarm");
        assert_eq!(armed_after(), None);
    }
}
