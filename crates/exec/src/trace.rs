//! Sample-burst trace recording.
//!
//! Sampling partitions an execution into *bursts*: stretches of ordinary
//! execution separated by firing sample points. A [`TraceSink`] observes
//! the boundary of every burst — which check fired, on which thread, how
//! long the burst ran in instructions and simulated cycles, and whether
//! the firing check guards a backedge — for both the pre-decoded engine
//! ([`crate::run_prepared_traced`]) and the tree-walking reference
//! ([`crate::run_naive_traced`]). The two engines produce identical
//! traces; the differential tests pin that.
//!
//! # Zero cost when off
//!
//! The sink is a *compile-time* parameter of the interpreter loop, not a
//! runtime flag: [`NoTrace`] sets [`TraceSink::ENABLED`] to `false`, and
//! every recording site is guarded by `if S::ENABLED`, so the
//! monomorphized untraced loop — the one [`crate::run`] and
//! [`crate::run_prepared`] execute — contains no trace code at all. The
//! `interp_dispatch` bench guards this: the untraced hot loop must not
//! regress against the pre-trace engine.
//!
//! # Identifying sample points
//!
//! A sample point is named `(func, check_ip)`: the function's index and
//! the absolute index of the `check` terminator in that function's decoded
//! op arena (blocks laid out in order, each contributing its instructions
//! plus one inlined terminator). The naive engine computes the same arena
//! index from its block/offset position, so identifiers agree across
//! engines and are stable for a given module.

/// One burst boundary: a check whose sample condition was true.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct BurstRecord {
    /// Thread that executed the firing check.
    pub thread: u32,
    /// Function containing the firing check (its [`isf_ir::FuncId`] index).
    pub func: u32,
    /// Arena index of the firing `check` op within `func` — together with
    /// `func`, the sample-point identifier.
    pub check_ip: u32,
    /// Whether the firing check guards a backedge (either outgoing edge of
    /// the check is a backedge of the transformed CFG); `false` for
    /// method-entry checks.
    pub backedge: bool,
    /// Burst length in interpreted instructions: the count since the
    /// previous sample on any thread (or since the run started).
    pub len_instructions: u64,
    /// Burst length in simulated cycles, measured at the moment the check
    /// fired — before the sample-switch surcharge of *this* sample is
    /// charged (surcharges of earlier samples are included in their
    /// following burst).
    pub len_cycles: u64,
}

/// Observer of burst boundaries, chosen at compile time by the `*_traced`
/// entry points.
pub trait TraceSink {
    /// Whether this sink records anything. When `false` (see [`NoTrace`]),
    /// the interpreter's recording sites compile away entirely.
    const ENABLED: bool = true;

    /// Called once per sample taken, in execution order.
    fn record(&mut self, record: BurstRecord);
}

/// The disabled sink: records nothing, costs nothing. [`crate::run`] and
/// [`crate::run_prepared`] execute the loop monomorphized over this type.
#[derive(Copy, Clone, Debug, Default)]
pub struct NoTrace;

impl TraceSink for NoTrace {
    const ENABLED: bool = false;

    #[inline(always)]
    fn record(&mut self, _record: BurstRecord) {}
}

/// A sink that buffers every burst record in memory, in execution order.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TraceBuffer {
    records: Vec<BurstRecord>,
}

impl TraceBuffer {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// The recorded bursts, in execution order.
    pub fn records(&self) -> &[BurstRecord] {
        &self.records
    }

    /// Consumes the buffer, returning the recorded bursts.
    pub fn into_records(self) -> Vec<BurstRecord> {
        self.records
    }
}

impl TraceSink for TraceBuffer {
    #[inline]
    fn record(&mut self, record: BurstRecord) {
        self.records.push(record);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_trace_is_statically_disabled() {
        const { assert!(!NoTrace::ENABLED) };
        const { assert!(TraceBuffer::ENABLED) };
    }

    #[test]
    fn buffer_preserves_order() {
        let mut b = TraceBuffer::new();
        for i in 0..3 {
            b.record(BurstRecord {
                thread: 0,
                func: 0,
                check_ip: i,
                backedge: false,
                len_instructions: u64::from(i),
                len_cycles: u64::from(i) * 2,
            });
        }
        let ips: Vec<u32> = b.records().iter().map(|r| r.check_ip).collect();
        assert_eq!(ips, vec![0, 1, 2]);
        assert_eq!(b.into_records().len(), 3);
    }
}
