//! Sampling triggers (paper §2.1–§2.2).
//!
//! A trigger decides, at every check, whether the sample condition is true.
//! The reproduction provides every mechanism the paper discusses:
//!
//! * [`Trigger::Counter`] — the paper's compiler-inserted counter-based
//!   sampling: one **global** counter decremented by every check; at zero
//!   it resets to the sample interval and fires. Deterministic, and
//!   distributes samples across all sample points proportionally to their
//!   execution frequency.
//! * [`Trigger::CounterPerThread`] — the §2.2 remedy for multi-processor
//!   counter contention: one counter per thread, no shared state.
//! * [`Trigger::CounterRandomized`] — the §4.4 remedy for deterministic
//!   aliasing with periodic program behaviour: the reset value is jittered
//!   by a deterministic xorshift PRNG (as DCPI does).
//! * [`Trigger::TimerBit`] — the §4.6 comparison point: a simulated timer
//!   sets a sample bit every `period` cycles; the next executed check
//!   consumes it. Reproduces the mis-attribution the paper measures.
//! * [`Trigger::Never`] / [`Trigger::Always`] — the endpoints used to
//!   measure pure framework overhead and to collect perfect profiles.

/// Configuration of the sampling trigger.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Trigger {
    /// The sample condition is never true (framework-overhead runs; also
    /// the "setting the sample condition permanently to false" shutdown
    /// mode of §2).
    Never,
    /// Every check fires (sample interval 1 — the perfect profile).
    Always,
    /// Global counter-based sampling with the given sample interval.
    Counter {
        /// Number of checks between samples.
        interval: u64,
    },
    /// Per-thread counter-based sampling.
    CounterPerThread {
        /// Number of checks between samples, per thread.
        interval: u64,
    },
    /// Counter-based sampling with a randomized reset value, uniform in
    /// `[interval - jitter, interval + jitter]`.
    CounterRandomized {
        /// Mean number of checks between samples.
        interval: u64,
        /// Maximum deviation from `interval`.
        jitter: u64,
        /// PRNG seed (runs are reproducible given the seed).
        seed: u64,
    },
    /// Timer-based sampling: a bit set every `period` simulated cycles,
    /// consumed by the next check.
    TimerBit {
        /// Simulated cycles between bit sets.
        period: u64,
    },
}

impl Trigger {
    /// Stable kind label for this trigger, used to key per-trigger-kind
    /// observability metrics (inter-sample-gap and checks-per-sample
    /// histograms).
    #[must_use]
    pub fn kind_name(&self) -> &'static str {
        match self {
            Trigger::Never => "never",
            Trigger::Always => "always",
            Trigger::Counter { .. } => "counter",
            Trigger::CounterPerThread { .. } => "counter-per-thread",
            Trigger::CounterRandomized { .. } => "counter-randomized",
            Trigger::TimerBit { .. } => "timer-bit",
        }
    }
}

impl Default for Trigger {
    fn default() -> Self {
        // The paper's sweet spot: high accuracy, ~1% sampling overhead.
        Trigger::Counter { interval: 1000 }
    }
}

/// Thread ids at or above this bound are tracked in a spill map instead of
/// the dense counter vector, so one huge sparse thread id cannot force a
/// multi-gigabyte `resize`.
const MAX_DENSE_THREADS: usize = 1024;

/// Runtime state of a trigger, owned by the interpreter.
#[derive(Clone, Debug)]
pub(crate) enum TriggerState {
    Never,
    Always,
    Counter {
        counter: u64,
        interval: u64,
    },
    PerThread {
        counters: Vec<u64>,
        sparse: std::collections::BTreeMap<usize, u64>,
        interval: u64,
    },
    Randomized {
        counter: u64,
        interval: u64,
        jitter: u64,
        rng: u64,
    },
    Timer {
        bit: bool,
        next_fire: u64,
        period: u64,
    },
}

pub(crate) fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

/// Stream seed used when splitmix64 maps a user seed to the xorshift fixed
/// point 0 (exactly one input does).
const SEED_FALLBACK: u64 = 0x9E37_79B9_7F4A_7C15;

/// Expands a user-provided seed into the xorshift stream state. xorshift
/// streams from nearby states overlap after one step, so seeding the state
/// with (a trivial function of) the seed itself aliases adjacent seeds;
/// splitmix64 decorrelates them.
pub(crate) fn seed_stream(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    if z == 0 {
        SEED_FALLBACK
    } else {
        z
    }
}

/// Draws uniformly from `[0, bound)` out of the xorshift stream using
/// Lemire's multiply-shift method with rejection. A plain
/// `xorshift(state) % bound` over-weights the low residues whenever
/// `bound` does not divide 2^64 (severely so for bounds near the top of
/// the range).
pub(crate) fn uniform_below(state: &mut u64, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    // Reject draws whose 128-bit product lands in the short first slice:
    // `threshold = 2^64 mod bound`, the number of over-represented values.
    let threshold = bound.wrapping_neg() % bound;
    loop {
        let m = u128::from(xorshift(state)) * u128::from(bound);
        if (m as u64) >= threshold {
            return (m >> 64) as u64;
        }
    }
}

impl TriggerState {
    pub(crate) fn new(trigger: Trigger) -> Self {
        match trigger {
            Trigger::Never => TriggerState::Never,
            Trigger::Always => TriggerState::Always,
            Trigger::Counter { interval } => TriggerState::Counter {
                counter: interval.max(1),
                interval: interval.max(1),
            },
            Trigger::CounterPerThread { interval } => TriggerState::PerThread {
                counters: Vec::new(),
                sparse: std::collections::BTreeMap::new(),
                interval: interval.max(1),
            },
            Trigger::CounterRandomized {
                interval,
                jitter,
                seed,
            } => TriggerState::Randomized {
                counter: interval.max(1),
                interval: interval.max(1),
                jitter,
                rng: seed_stream(seed),
            },
            Trigger::TimerBit { period } => TriggerState::Timer {
                bit: false,
                next_fire: period.max(1),
                period: period.max(1),
            },
        }
    }

    /// Called by the interpreter as the simulated clock advances; only the
    /// timer trigger cares.
    #[inline]
    pub(crate) fn on_tick(&mut self, now: u64) {
        if let TriggerState::Timer {
            bit,
            next_fire,
            period,
        } = self
        {
            if now >= *next_fire {
                *bit = true;
                // Jump straight past `now` instead of looping once per
                // elapsed period: a long simulated gap with a tiny period
                // must not spin O(gap/period) iterations.
                let behind = now - *next_fire;
                *next_fire =
                    (*next_fire).saturating_add((behind / *period + 1).saturating_mul(*period));
            }
        }
    }

    /// Evaluates the sample condition at a check executed by `thread`.
    #[inline]
    pub(crate) fn on_check(&mut self, thread: usize) -> bool {
        match self {
            TriggerState::Never => false,
            TriggerState::Always => true,
            TriggerState::Counter { counter, interval } => {
                *counter -= 1;
                if *counter == 0 {
                    *counter = *interval;
                    true
                } else {
                    false
                }
            }
            TriggerState::PerThread {
                counters,
                sparse,
                interval,
            } => {
                let c = if thread < MAX_DENSE_THREADS {
                    if counters.len() <= thread {
                        counters.resize(thread + 1, *interval);
                    }
                    &mut counters[thread]
                } else {
                    // A pathological sparse thread id must not allocate a
                    // `thread`-sized vector; spill to the map instead.
                    sparse.entry(thread).or_insert(*interval)
                };
                *c -= 1;
                if *c == 0 {
                    *c = *interval;
                    true
                } else {
                    false
                }
            }
            TriggerState::Randomized {
                counter,
                interval,
                jitter,
                rng,
            } => {
                *counter -= 1;
                if *counter == 0 {
                    // All arithmetic saturates: `interval` near `u64::MAX`
                    // must clamp into `[max(1, interval - jitter),
                    // interval + jitter]` instead of overflowing (a
                    // debug-build panic before this was fixed).
                    let spread = (*jitter).saturating_mul(2).saturating_add(1);
                    let offset = uniform_below(rng, spread);
                    *counter = (*interval)
                        .saturating_add(offset)
                        .saturating_sub(*jitter)
                        .max(1);
                    true
                } else {
                    false
                }
            }
            TriggerState::Timer { bit, .. } => std::mem::take(bit),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_fires_every_interval() {
        let mut t = TriggerState::new(Trigger::Counter { interval: 3 });
        let fires: Vec<bool> = (0..9).map(|_| t.on_check(0)).collect();
        assert_eq!(
            fires,
            vec![false, false, true, false, false, true, false, false, true]
        );
    }

    #[test]
    fn interval_one_always_fires() {
        let mut t = TriggerState::new(Trigger::Counter { interval: 1 });
        assert!((0..5).all(|_| t.on_check(0)));
    }

    #[test]
    fn per_thread_counters_are_independent() {
        let mut t = TriggerState::new(Trigger::CounterPerThread { interval: 2 });
        assert!(!t.on_check(0));
        assert!(!t.on_check(1));
        assert!(t.on_check(0)); // thread 0 reached its interval
        assert!(t.on_check(1)); // so did thread 1, independently
    }

    #[test]
    fn timer_bit_set_by_tick_and_consumed_once() {
        let mut t = TriggerState::new(Trigger::TimerBit { period: 100 });
        assert!(!t.on_check(0));
        t.on_tick(50);
        assert!(!t.on_check(0));
        t.on_tick(100);
        assert!(t.on_check(0), "bit set at the period boundary");
        assert!(!t.on_check(0), "bit consumed by the previous check");
    }

    #[test]
    fn timer_catches_up_after_long_instruction() {
        let mut t = TriggerState::new(Trigger::TimerBit { period: 10 });
        t.on_tick(95); // one long instruction spanned many periods
        assert!(t.on_check(0));
        assert!(!t.on_check(0), "only one pending bit, not nine");
    }

    #[test]
    fn randomized_reset_stays_in_range_and_is_deterministic() {
        let mk = || {
            TriggerState::new(Trigger::CounterRandomized {
                interval: 100,
                jitter: 20,
                seed: 42,
            })
        };
        let run = |mut t: TriggerState| {
            let mut gaps = Vec::new();
            let mut since = 0u64;
            for _ in 0..100_000 {
                since += 1;
                if t.on_check(0) {
                    gaps.push(since);
                    since = 0;
                }
            }
            gaps
        };
        let a = run(mk());
        let b = run(mk());
        assert_eq!(a, b, "same seed, same schedule");
        assert!(a.len() > 500);
        // After the first (deterministic) gap, all gaps are jittered.
        assert!(a[1..].iter().all(|&g| (80..=120).contains(&g)));
        assert!(a[1..].iter().any(|&g| g != 100), "jitter actually varies");
    }

    #[test]
    fn randomized_reset_near_u64_max_does_not_overflow() {
        // Regression: with `interval = u64::MAX - 1` the old reset computed
        // `interval + offset`, overflowing (a panic in debug builds) for
        // any positive offset. Drive the counter straight to the reset
        // point instead of iterating u64::MAX - 1 checks.
        let interval = u64::MAX - 1;
        let jitter = 5;
        let mut t = TriggerState::Randomized {
            counter: 1,
            interval,
            jitter,
            rng: 42 | 1,
        };
        for _ in 0..64 {
            assert!(t.on_check(0), "counter 1 fires and resets");
            let TriggerState::Randomized { counter, .. } = &mut t else {
                unreachable!()
            };
            assert!(
                (interval - jitter..=u64::MAX).contains(counter),
                "reset {counter} outside [interval - jitter, interval + jitter]"
            );
            *counter = 1; // rearm for the next reset draw
        }
        // Degenerate jitter must also be safe: spread saturates.
        let mut t = TriggerState::Randomized {
            counter: 1,
            interval: 10,
            jitter: u64::MAX,
            rng: 7 | 1,
        };
        assert!(t.on_check(0));
    }

    #[test]
    fn randomized_distinct_seeds_produce_distinct_schedules() {
        // Regression: the stream used to be seeded with `seed | 1`, so
        // seeds 2k and 2k+1 produced identical sample schedules.
        let schedule = |seed: u64| {
            let mut t = TriggerState::new(Trigger::CounterRandomized {
                interval: 50,
                jitter: 10,
                seed,
            });
            let mut gaps = Vec::new();
            let mut since = 0u64;
            for _ in 0..20_000 {
                since += 1;
                if t.on_check(0) {
                    gaps.push(since);
                    since = 0;
                }
            }
            gaps
        };
        for k in 0..8u64 {
            assert_ne!(
                schedule(2 * k),
                schedule(2 * k + 1),
                "seeds {} and {} alias",
                2 * k,
                2 * k + 1
            );
        }
        assert_eq!(schedule(42), schedule(42), "same seed stays deterministic");
    }

    #[test]
    fn jitter_offsets_are_unbiased() {
        // Chi-square-ish uniformity check on the offset sampler, with a
        // bound big enough that modulo reduction would be blatantly
        // non-uniform: for `bound = 3 << 62`, `x % bound` maps two 2^62-
        // sized slices of the u64 range onto `[0, 2^62)`, making the first
        // third of the offsets twice as likely (~50% instead of ~33%).
        let bound = 3u64 << 62;
        let third = bound / 3;
        let mut rng = seed_stream(12345);
        let draws = 30_000u64;
        let mut buckets = [0u64; 3];
        for _ in 0..draws {
            let x = uniform_below(&mut rng, bound);
            assert!(x < bound, "draw out of range");
            buckets[(x / third).min(2) as usize] += 1;
        }
        let expected = draws as f64 / 3.0;
        let chi2: f64 = buckets
            .iter()
            .map(|&o| {
                let d = o as f64 - expected;
                d * d / expected
            })
            .sum();
        // 2 degrees of freedom: p < 0.001 above ~13.8. The pre-fix modulo
        // sampler scores in the thousands here.
        assert!(
            chi2 < 13.8,
            "offset distribution skewed: chi2 = {chi2}, buckets = {buckets:?}"
        );
    }

    #[test]
    fn timer_tick_over_huge_gap_is_constant_time() {
        // Regression: the old catch-up `while` looped once per elapsed
        // period — u64::MAX iterations here.
        let mut t = TriggerState::new(Trigger::TimerBit { period: 1 });
        t.on_tick(u64::MAX);
        assert!(t.on_check(0));
        assert!(!t.on_check(0), "only one pending bit");
    }

    #[test]
    fn per_thread_high_thread_index_does_not_allocate_huge_vec() {
        // Regression: a sparse thread id used to force
        // `counters.resize(thread + 1)` — gigabytes for an id like this.
        let big = usize::MAX / 2;
        let mut t = TriggerState::new(Trigger::CounterPerThread { interval: 2 });
        assert!(!t.on_check(big));
        assert!(t.on_check(big), "sparse thread fires at its interval");
        // Dense threads stay independent of the spilled one.
        assert!(!t.on_check(0));
        assert!(!t.on_check(big));
        assert!(t.on_check(0));
        let TriggerState::PerThread {
            counters, sparse, ..
        } = &t
        else {
            unreachable!()
        };
        assert!(counters.len() <= MAX_DENSE_THREADS);
        assert_eq!(sparse.len(), 1);
    }

    #[test]
    fn never_and_always() {
        let mut n = TriggerState::new(Trigger::Never);
        let mut a = TriggerState::new(Trigger::Always);
        assert!(!(0..10).any(|_| n.on_check(0)));
        assert!((0..10).all(|_| a.on_check(0)));
    }
}
