//! Integration-test crate. All tests live in `tests/`; this library hosts
//! shared helpers and the random-program generator used by the
//! differential suites.

pub mod program_gen;

/// Compiles Jive source, panicking with the error on failure.
pub fn compile(src: &str) -> isf_ir::Module {
    isf_frontend::compile(src).expect("test program compiles")
}

/// Runs a module with the given trigger and default configuration.
pub fn run_with(module: &isf_ir::Module, trigger: isf_exec::Trigger) -> isf_exec::Outcome {
    let cfg = isf_exec::VmConfig {
        trigger,
        limits: isf_exec::ExecLimits::cycles(500_000_000),
        ..isf_exec::VmConfig::default()
    };
    isf_exec::run(module, &cfg).expect("test program runs")
}
