//! A proptest generator of arbitrary trap-free Jive programs, shared by
//! the differential test suites (engine equivalence, trace equivalence).
//!
//! Statement fragments are rendered into a `main` alongside a fixed class
//! and helper function. Every operation is total (no division, bounded
//! loops), so generated programs terminate without trapping.

use proptest::prelude::*;

/// Statement fragments rendered into a Jive `main`.
#[derive(Debug, Clone)]
pub enum Stmt {
    /// `vN = <expr>;`
    Assign(u8, Expr),
    /// `p.f = <expr>;`
    SetF(Expr),
    /// `print(<expr>);`
    Print(Expr),
    /// `if ((<expr>) % 2 == 0) { ... } else { ... }`
    If(Expr, Vec<Stmt>, Vec<Stmt>),
    /// A bounded `while` loop running the body N times.
    Loop(u8, Vec<Stmt>),
    /// `vA = vB; vC = vA; vB = vC;` — a chain of register-to-register
    /// moves, the shape the fusion pass folds into one `MoveRun`.
    MoveChain(u8, u8, u8),
    /// `arr[K] = vN;` — an array store with a constant index (in bounds
    /// by construction), the `Const`+`ArraySet` fusion candidate.
    ArrPut(u8, u8),
    /// `vN = arr[K];` — a constant-index array load, the
    /// `Const`+`ArrayGet` fusion candidate.
    ArrTake(u8, u8),
    /// `if (vN < K) { ... } else { ... }` — a comparison feeding the
    /// branch directly, the `Const`+`Bin`+`Br` fusion candidate.
    CmpIf(u8, i8, Vec<Stmt>, Vec<Stmt>),
}

/// Expression fragments; all total.
#[derive(Debug, Clone)]
pub enum Expr {
    /// A small literal.
    Lit(i8),
    /// One of the four pre-declared locals.
    Var(u8),
    /// The object field `p.f`.
    FieldF,
    /// Addition.
    Add(Box<Expr>, Box<Expr>),
    /// Multiplication.
    Mul(Box<Expr>, Box<Expr>),
    /// Modulo by a non-zero constant.
    Mod(Box<Expr>, u8),
    /// A call to the free function `helper`.
    Helper(Box<Expr>),
    /// A method call on `p`.
    Bump(Box<Expr>),
}

/// Strategy for arbitrary [`Expr`] trees.
pub fn expr_strategy() -> impl proptest::strategy::Strategy<Value = Expr> {
    let leaf = prop_oneof![
        any::<i8>().prop_map(Expr::Lit),
        (0u8..4).prop_map(Expr::Var),
        Just(Expr::FieldF),
    ];
    leaf.prop_recursive(3, 20, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Add(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Mul(a.into(), b.into())),
            (inner.clone(), 1u8..17).prop_map(|(a, k)| Expr::Mod(a.into(), k)),
            inner.clone().prop_map(|a| Expr::Helper(a.into())),
            inner.prop_map(|a| Expr::Bump(a.into())),
        ]
    })
}

/// Strategy for arbitrary [`Stmt`] trees (conditionals and bounded loops
/// included).
pub fn stmt_strategy() -> impl proptest::strategy::Strategy<Value = Stmt> {
    let simple = prop_oneof![
        ((0u8..4), expr_strategy()).prop_map(|(v, e)| Stmt::Assign(v, e)),
        expr_strategy().prop_map(Stmt::SetF),
        expr_strategy().prop_map(Stmt::Print),
        ((0u8..4), (0u8..4), (0u8..4)).prop_map(|(a, b, c)| Stmt::MoveChain(a, b, c)),
        ((0u8..8), (0u8..4)).prop_map(|(k, v)| Stmt::ArrPut(k, v)),
        ((0u8..4), (0u8..8)).prop_map(|(v, k)| Stmt::ArrTake(v, k)),
    ];
    simple.prop_recursive(2, 12, 4, |inner| {
        prop_oneof![
            (
                expr_strategy(),
                prop::collection::vec(inner.clone(), 0..3),
                prop::collection::vec(inner.clone(), 0..3)
            )
                .prop_map(|(c, t, e)| Stmt::If(c, t, e)),
            (
                (0u8..4),
                any::<i8>(),
                prop::collection::vec(inner.clone(), 0..3),
                prop::collection::vec(inner.clone(), 0..3)
            )
                .prop_map(|(v, k, t, e)| Stmt::CmpIf(v, k, t, e)),
            ((0u8..5), prop::collection::vec(inner, 1..3)).prop_map(|(n, b)| Stmt::Loop(n, b)),
        ]
    })
}

fn render_expr(e: &Expr, out: &mut String) {
    match e {
        Expr::Lit(v) => out.push_str(&format!("({v})")),
        Expr::Var(v) => out.push_str(&format!("v{v}")),
        Expr::FieldF => out.push_str("p.f"),
        Expr::Add(a, b) | Expr::Mul(a, b) => {
            let op = if matches!(e, Expr::Add(..)) { "+" } else { "*" };
            out.push('(');
            render_expr(a, out);
            out.push_str(&format!(" {op} "));
            render_expr(b, out);
            out.push(')');
        }
        Expr::Mod(a, k) => {
            out.push('(');
            render_expr(a, out);
            out.push_str(&format!(" % {k})"));
        }
        Expr::Helper(a) => {
            out.push_str("helper(");
            render_expr(a, out);
            out.push(')');
        }
        Expr::Bump(a) => {
            out.push_str("p.bump(");
            render_expr(a, out);
            out.push(')');
        }
    }
}

fn render_stmts(stmts: &[Stmt], out: &mut String, indent: usize, loop_id: &mut u32) {
    let pad = "    ".repeat(indent);
    for s in stmts {
        match s {
            Stmt::Assign(v, e) => {
                out.push_str(&format!("{pad}v{v} = "));
                render_expr(e, out);
                out.push_str(";\n");
            }
            Stmt::SetF(e) => {
                out.push_str(&format!("{pad}p.f = "));
                render_expr(e, out);
                out.push_str(";\n");
            }
            Stmt::Print(e) => {
                out.push_str(&format!("{pad}print("));
                render_expr(e, out);
                out.push_str(");\n");
            }
            Stmt::If(c, t, e) => {
                out.push_str(&format!("{pad}if (("));
                render_expr(c, out);
                out.push_str(") % 2 == 0) {\n");
                render_stmts(t, out, indent + 1, loop_id);
                out.push_str(&format!("{pad}}} else {{\n"));
                render_stmts(e, out, indent + 1, loop_id);
                out.push_str(&format!("{pad}}}\n"));
            }
            Stmt::Loop(n, body) => {
                let id = *loop_id;
                *loop_id += 1;
                out.push_str(&format!("{pad}var loop{id} = 0;\n"));
                out.push_str(&format!("{pad}while (loop{id} < {n}) {{\n"));
                render_stmts(body, out, indent + 1, loop_id);
                out.push_str(&format!("{pad}    loop{id} = loop{id} + 1;\n"));
                out.push_str(&format!("{pad}}}\n"));
            }
            Stmt::MoveChain(a, b, c) => {
                out.push_str(&format!("{pad}v{a} = v{b};\n"));
                out.push_str(&format!("{pad}v{c} = v{a};\n"));
                out.push_str(&format!("{pad}v{b} = v{c};\n"));
            }
            Stmt::ArrPut(k, v) => {
                out.push_str(&format!("{pad}arr[{}] = v{v};\n", k % 8));
            }
            Stmt::ArrTake(v, k) => {
                out.push_str(&format!("{pad}v{v} = arr[{}];\n", k % 8));
            }
            Stmt::CmpIf(v, k, t, e) => {
                out.push_str(&format!("{pad}if (v{v} < ({k})) {{\n"));
                render_stmts(t, out, indent + 1, loop_id);
                out.push_str(&format!("{pad}}} else {{\n"));
                render_stmts(e, out, indent + 1, loop_id);
                out.push_str(&format!("{pad}}}\n"));
            }
        }
    }
}

/// The shape of a generated concurrent program: how its worker threads
/// relate to each other. All shapes combine through *commutative* shared
/// updates only (additions into a shared cell) and print exclusively from
/// `main` after every join, so their observable behaviour — output, final
/// heap state, per-thread instruction streams — is schedule-independent by
/// construction. That makes them the right fodder for schedule-exploration
/// tests: any cross-schedule divergence is an engine bug, not a program
/// race.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConcShape {
    /// `main` spawns every worker up front, then joins them all (fan-out /
    /// fan-in). Workers accumulate thread-locally and publish once.
    FanOut,
    /// Worker `k` joins worker `k - 1` before publishing, so completion
    /// order is a chain; `main` joins only the tail and relies on the
    /// transitive joins (blocked-`Join` wake coverage).
    JoinChain,
    /// Every worker hammers the one shared cell inside its loop —
    /// maximum contention on the commutative update.
    Contention,
}

/// A generated concurrent program: `workers` green threads of `iters`
/// loop iterations each, arranged per [`ConcShape`].
#[derive(Debug, Clone, Copy)]
pub struct ConcProgram {
    /// Worker thread count (2..=5; `main` makes it `workers + 1` threads).
    pub workers: u8,
    /// Loop iterations per worker (1..=6).
    pub iters: u8,
    /// How the workers relate.
    pub shape: ConcShape,
}

/// Strategy over [`ConcProgram`]s: 2–5 workers, 1–6 iterations, all three
/// shapes.
pub fn conc_program_strategy() -> impl proptest::strategy::Strategy<Value = ConcProgram> {
    (
        2u8..6,
        1u8..7,
        prop_oneof![
            Just(ConcShape::FanOut),
            Just(ConcShape::JoinChain),
            Just(ConcShape::Contention),
        ],
    )
        .prop_map(|(workers, iters, shape)| ConcProgram {
            workers,
            iters,
            shape,
        })
}

/// Renders a [`ConcProgram`] into a complete Jive program. The final
/// output — one `print` per worker count plus the shared sum — is the
/// same under every thread schedule.
pub fn render_conc_program(p: &ConcProgram) -> String {
    let workers = p.workers.max(2);
    let iters = p.iters.max(1);
    let mut src = String::from("class Cell { field v; field g; }\n");
    match p.shape {
        ConcShape::FanOut => {
            src.push_str(
                "fn work(c, n, k) {\n    var acc = 0;\n    var i = 0;\n    while (i < n) { acc = acc + k; i = i + 1; }\n    c.v = c.v + acc;\n}\n",
            );
        }
        ConcShape::JoinChain => {
            src.push_str(
                "fn work(c, n, k) {\n    var i = 0;\n    while (i < n) { c.v = c.v + k; i = i + 1; }\n}\n\
                 fn chained(c, n, k, prev) {\n    join(prev);\n    var i = 0;\n    while (i < n) { c.v = c.v + k; i = i + 1; }\n}\n",
            );
        }
        ConcShape::Contention => {
            src.push_str(
                "fn work(c, n, k) {\n    var i = 0;\n    while (i < n) { c.v = c.v + k; c.g = c.g + 1; i = i + 1; }\n}\n",
            );
        }
    }
    src.push_str("fn main() {\n    var c = new Cell;\n    c.v = 0;\n    c.g = 0;\n");
    for k in 0..workers {
        match p.shape {
            ConcShape::JoinChain if k > 0 => src.push_str(&format!(
                "    var t{k} = spawn chained(c, {iters}, {w}, t{prev});\n",
                w = k + 1,
                prev = k - 1
            )),
            _ => src.push_str(&format!(
                "    var t{k} = spawn work(c, {iters}, {w});\n",
                w = k + 1
            )),
        }
    }
    match p.shape {
        ConcShape::JoinChain => {
            // Joining the tail transitively joins the whole chain; joining
            // the (by then finished) rest exercises join-on-done.
            src.push_str(&format!("    join(t{});\n", workers - 1));
            for k in 0..workers - 1 {
                src.push_str(&format!("    join(t{k});\n"));
            }
        }
        _ => {
            for k in 0..workers {
                src.push_str(&format!("    join(t{k});\n"));
            }
        }
    }
    src.push_str(&format!(
        "    print({workers});\n    print(c.v);\n    print(c.g);\n}}\n"
    ));
    src
}

/// A program that runs `threads` worker threads as a recursive spawn
/// chain — thread `k` spawns thread `k + 1`, joins it, then publishes —
/// so thread IDs are assigned deterministically on every schedule (arrays
/// hold integers only, so handles can't be stored and bulk-joined). With
/// `threads > 1024` this drives `Trigger::CounterPerThread` past its
/// dense-lane cap (`MAX_DENSE_THREADS`) into the spill map, on every
/// schedule.
pub fn spill_program(threads: u32) -> String {
    format!(
        "class Cell {{ field v; }}
fn chain(c, n) {{
    var t = 0;
    if (n > 1) {{ t = spawn chain(c, n - 1); }}
    var j = 0;
    while (j < 2) {{ j = j + 1; }}
    c.v = c.v + 1;
    if (n > 1) {{ join(t); }}
}}
fn main() {{
    var c = new Cell;
    c.v = 0;
    var t = spawn chain(c, {threads});
    join(t);
    print(c.v);
}}"
    )
}

/// Renders the generated statements into a complete Jive program.
pub fn render_program(stmts: &[Stmt]) -> String {
    let mut body = String::new();
    let mut loop_id = 0;
    render_stmts(stmts, &mut body, 1, &mut loop_id);
    format!(
        "class P {{
    field f; field g;
    method bump(x) {{ self.f = self.f + x; return self.f; }}
}}
fn helper(x) {{ return (x * 7 + 3) % 1000003; }}
fn main() {{
    var v0 = 1; var v1 = 2; var v2 = 3; var v3 = 5;
    var p = new P;
    var arr = array(8);
{body}    print(v0); print(v1); print(v2); print(v3);
    print(p.f);
    print(arr[0]); print(arr[3]); print(arr[7]);
}}"
    )
}
