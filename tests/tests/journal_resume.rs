//! Property test for the cell journal's crash tolerance: truncating a
//! valid journal at *any* byte offset must either resume with the
//! surviving prefix of cells or refuse cleanly — never panic, never
//! invent a cell, never accept a journal whose header is incomplete.

use std::path::PathBuf;
use std::sync::Mutex;

use isf_harness::journal::{self, JournalError, RunInputs};
use isf_obs::{emit, Json};
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;

/// The journal attaches to process-global state, so cases must not
/// interleave with each other (proptest itself runs cases serially; this
/// guards against future tests in this binary).
static JOURNAL_LOCK: Mutex<()> = Mutex::new(());

fn inputs() -> RunInputs {
    RunInputs {
        version: "0.0.0-proptest".to_owned(),
        scale: "smoke".to_owned(),
        experiments: vec!["table1".to_owned()],
        cell_budget: 0,
        retries: 0,
        fault_prob_bits: 0,
        fault_seed: 0,
        vm_config: "VmConfig { proptest }".to_owned(),
    }
}

fn temp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "isf-journal-proptest-{tag}-{}.jsonl",
        std::process::id()
    ))
}

/// Builds a valid journal with `cells` finished cells through the real
/// write path and returns its bytes.
fn build_journal(cells: usize) -> Vec<u8> {
    let path = temp_path("seed");
    journal::start_fresh(&path, &inputs()).expect("start fresh");
    for i in 0..cells {
        let label = format!("table1/bench{i}");
        let cell = Json::obj([
            ("type", "cell".into()),
            ("label", label.as_str().into()),
            ("sim_cycles", (1000 + i as u64).into()),
        ]);
        let payload = Json::obj([("value", (i as f64 * 1.5).into())]);
        let phases = vec![emit::PhaseTotal {
            name: "run".to_owned(),
            count: 1,
            wall_ns: 7,
        }];
        journal::append(&label, &cell, None, Some(&payload), &phases);
    }
    journal::deactivate();
    let bytes = std::fs::read(&path).expect("read journal");
    std::fs::remove_file(&path).ok();
    bytes
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn truncated_journal_resumes_with_a_prefix_or_refuses_cleanly(
        cells in 0usize..5,
        per_mille in 0u32..=1000,
    ) {
        let _guard = JOURNAL_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        let bytes = build_journal(cells);
        let header_len = 1 + bytes
            .iter()
            .position(|&b| b == b'\n')
            .expect("journal has a header line");
        // The cut offset in bytes, spread over the whole file so both the
        // header and every cell line get sliced across proptest cases.
        let cut = (bytes.len() * per_mille as usize) / 1000;

        let path = temp_path("cut");
        std::fs::write(&path, &bytes[..cut]).expect("write truncated copy");
        let result = journal::open_resume(&path, &inputs());
        match result {
            Ok(replayable) => {
                // The header survived and some prefix of cells with it.
                prop_assert!(cut >= header_len, "resumed with a cut header (cut={cut})");
                prop_assert!(replayable <= cells);
                // The surviving journal is fully repaired: appending a new
                // cell and resuming again must see one more cell.
                let label = "table1/appended";
                let cell = Json::obj([("type", "cell".into())]);
                journal::append(label, &cell, None, None, &[]);
                journal::deactivate();
                let after = journal::open_resume(&path, &inputs())
                    .expect("a repaired journal must resume");
                prop_assert_eq!(after, replayable + 1);
            }
            Err(JournalError::Corrupt(_)) => {
                // Only an incomplete header refuses; cell damage is
                // covered by the truncation tolerance.
                prop_assert!(cut < header_len, "clean journal refused (cut={cut})");
            }
            Err(e) => {
                journal::deactivate();
                std::fs::remove_file(&path).ok();
                return Err(TestCaseError::Fail(format!(
                    "unexpected error class at cut={cut}: {e}"
                )));
            }
        }
        journal::deactivate();
        std::fs::remove_file(&path).ok();
    }
}
