//! Textual-IR round-trip tests: `display → parse → display` must be the
//! identity for every function the system can produce — front-end output,
//! optimizer output, and the output of every sampling transform with every
//! instrumentation kind.

use isf_core::{instrument_module, Options, Strategy};
use isf_instr::{
    BlockCountInstrumentation, CallEdgeInstrumentation, EdgeCountInstrumentation,
    FieldAccessInstrumentation, Instrumentation, ModulePlan, PathProfileInstrumentation,
    ValueProfileInstrumentation,
};
use isf_ir::{parse::parse_function, Module};
use isf_workloads::{suite, Scale};

fn assert_roundtrips(m: &Module, context: &str) {
    for (_, f) in m.functions() {
        let text = f.to_string();
        let parsed =
            parse_function(&text).unwrap_or_else(|e| panic!("{context}/{}: {e}\n{text}", f.name()));
        assert_eq!(
            parsed.to_string(),
            text,
            "{context}/{}: round-trip not identity",
            f.name()
        );
        isf_ir::verify::verify_function(&parsed, None)
            .unwrap_or_else(|e| panic!("{context}/{}: parsed IR invalid: {e}", f.name()));
    }
}

#[test]
fn frontend_output_roundtrips() {
    for w in suite(Scale::Smoke) {
        assert_roundtrips(&w.compile(), w.name());
    }
}

#[test]
fn optimizer_output_roundtrips() {
    for w in suite(Scale::Smoke) {
        let m = isf_frontend::compile_optimized(w.source()).unwrap();
        assert_roundtrips(&m, &format!("{}+opt", w.name()));
    }
}

#[test]
fn transform_output_roundtrips_with_every_instrumentation() {
    let kinds: Vec<&dyn Instrumentation> = vec![
        &CallEdgeInstrumentation,
        &FieldAccessInstrumentation,
        &BlockCountInstrumentation,
        &EdgeCountInstrumentation,
        &ValueProfileInstrumentation,
        &PathProfileInstrumentation,
    ];
    for name in ["jess", "javac"] {
        let module = isf_workloads::by_name(name, Scale::Smoke)
            .unwrap()
            .compile();
        let plan = ModulePlan::build(&module, &kinds);
        for strategy in [
            Strategy::Exhaustive,
            Strategy::FullDuplication,
            Strategy::PartialDuplication,
            Strategy::NoDuplication,
        ] {
            let (out, _) = instrument_module(&module, &plan, &Options::new(strategy)).unwrap();
            assert_roundtrips(&out, &format!("{name}/{strategy}"));
        }
    }
}
