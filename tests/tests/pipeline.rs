//! End-to-end pipeline tests: every strategy, on real benchmark programs,
//! preserves semantics, verifies structurally, and honours Property 1.

use isf_core::{instrument_module, property, Options, Strategy};
use isf_exec::Trigger;
use isf_instr::{CallEdgeInstrumentation, FieldAccessInstrumentation, Instrumentation, ModulePlan};
use isf_integration_tests::run_with;
use isf_workloads::{by_name, Scale};

const BENCHES: [&str; 4] = ["compress", "jess", "javac", "pbob"];

fn kinds() -> Vec<&'static dyn Instrumentation> {
    vec![&CallEdgeInstrumentation, &FieldAccessInstrumentation]
}

#[test]
fn all_strategies_preserve_benchmark_semantics() {
    for name in BENCHES {
        let module = by_name(name, Scale::Smoke).unwrap().compile();
        let plan = ModulePlan::build(&module, &kinds());
        let baseline = run_with(&module, Trigger::Never);
        for strategy in [
            Strategy::Exhaustive,
            Strategy::FullDuplication,
            Strategy::PartialDuplication,
            Strategy::NoDuplication,
            Strategy::ChecksOnly {
                entries: true,
                backedges: true,
            },
        ] {
            let (out, _) = instrument_module(&module, &plan, &Options::new(strategy)).unwrap();
            isf_ir::verify::verify_module(&out)
                .unwrap_or_else(|e| panic!("{name}/{strategy}: {e}"));
            for trigger in [
                Trigger::Never,
                Trigger::Always,
                Trigger::Counter { interval: 23 },
            ] {
                let o = run_with(&out, trigger);
                assert_eq!(
                    o.output, baseline.output,
                    "{name}/{strategy} diverged under {trigger:?}"
                );
            }
        }
    }
}

#[test]
fn duplicating_strategies_satisfy_property1_against_baseline() {
    for name in BENCHES {
        let module = by_name(name, Scale::Smoke).unwrap().compile();
        let plan = ModulePlan::build(&module, &kinds());
        let baseline = run_with(&module, Trigger::Never);
        for strategy in [Strategy::FullDuplication, Strategy::PartialDuplication] {
            let (out, _) = instrument_module(&module, &plan, &Options::new(strategy)).unwrap();
            for trigger in [
                Trigger::Never,
                Trigger::Always,
                Trigger::Counter { interval: 7 },
            ] {
                let o = run_with(&out, trigger);
                assert!(
                    o.satisfies_property1_vs(&baseline),
                    "{name}/{strategy}/{trigger:?}: {} checks vs {} entries + {} backedges",
                    o.checks_executed,
                    baseline.entries_executed,
                    baseline.backedges_executed
                );
            }
        }
    }
}

#[test]
fn structural_validators_pass_on_benchmarks() {
    for name in BENCHES {
        let module = by_name(name, Scale::Smoke).unwrap().compile();
        let plan = ModulePlan::build(&module, &kinds());
        for strategy in [
            Strategy::FullDuplication,
            Strategy::PartialDuplication,
            Strategy::NoDuplication,
        ] {
            let (out, stats) = instrument_module(&module, &plan, &Options::new(strategy)).unwrap();
            for (id, f) in out.functions() {
                let fs = &stats.functions[id.index()];
                property::dup_region_is_dag(f, fs)
                    .unwrap_or_else(|e| panic!("{name}/{strategy}/{}: {e}", f.name()));
                property::instrumentation_confined_to_dup_code(f, fs)
                    .unwrap_or_else(|e| panic!("{name}/{strategy}/{}: {e}", f.name()));
                if strategy == Strategy::FullDuplication {
                    property::checks_on_entries_and_backedges(f, fs)
                        .unwrap_or_else(|e| panic!("{name}/{}: {e}", f.name()));
                }
            }
        }
    }
}

#[test]
fn interval_one_profiles_equal_exhaustive_on_benchmarks() {
    for name in BENCHES {
        let module = by_name(name, Scale::Smoke).unwrap().compile();
        let plan = ModulePlan::build(&module, &kinds());
        let (exh, _) =
            instrument_module(&module, &plan, &Options::new(Strategy::Exhaustive)).unwrap();
        let perfect = run_with(&exh, Trigger::Never).profile;
        for strategy in [
            Strategy::FullDuplication,
            Strategy::PartialDuplication,
            Strategy::NoDuplication,
        ] {
            let (out, _) = instrument_module(&module, &plan, &Options::new(strategy)).unwrap();
            let sampled = run_with(&out, Trigger::Always).profile;
            assert_eq!(
                perfect.call_edges(),
                sampled.call_edges(),
                "{name}/{strategy}: call edges differ at interval 1"
            );
            assert_eq!(
                perfect.field_accesses(),
                sampled.field_accesses(),
                "{name}/{strategy}: field accesses differ at interval 1"
            );
        }
    }
}

#[test]
fn yieldpoint_optimization_on_benchmarks() {
    for name in ["compress", "mpegaudio"] {
        let module = by_name(name, Scale::Smoke).unwrap().compile();
        let plan = ModulePlan::build(&module, &kinds());
        let baseline = run_with(&module, Trigger::Never);
        let (plain, _) =
            instrument_module(&module, &plan, &Options::new(Strategy::FullDuplication)).unwrap();
        let (opt, _) = instrument_module(
            &module,
            &plan,
            &Options::new(Strategy::FullDuplication).with_yieldpoint_optimization(),
        )
        .unwrap();
        let o_plain = run_with(&plain, Trigger::Counter { interval: 101 });
        let o_opt = run_with(&opt, Trigger::Counter { interval: 101 });
        assert_eq!(o_plain.output, baseline.output);
        assert_eq!(o_opt.output, baseline.output);
        assert!(
            o_opt.cycles < o_plain.cycles,
            "{name}: yieldpoint optimization must reduce cycles"
        );
        // Same samples, same profile: accuracy untouched (§4.5).
        assert_eq!(o_plain.samples_taken, o_opt.samples_taken);
        assert_eq!(
            o_plain.profile.field_accesses(),
            o_opt.profile.field_accesses()
        );
    }
}

#[test]
fn multithreaded_benchmarks_sample_under_every_trigger() {
    for name in ["pbob", "volano"] {
        let module = by_name(name, Scale::Smoke).unwrap().compile();
        let plan = ModulePlan::build(&module, &kinds());
        let baseline = run_with(&module, Trigger::Never);
        let (out, _) =
            instrument_module(&module, &plan, &Options::new(Strategy::FullDuplication)).unwrap();
        // Small intervals: each worker thread only executes a few hundred
        // checks at smoke scale, and a sample must land on a check whose
        // duplicated region actually contains instrumentation (a method
        // entry) to record anything.
        for trigger in [
            Trigger::Counter { interval: 13 },
            Trigger::CounterPerThread { interval: 13 },
            Trigger::CounterRandomized {
                interval: 13,
                jitter: 4,
                seed: 5,
            },
            Trigger::TimerBit { period: 2_003 },
        ] {
            let o = run_with(&out, trigger);
            assert_eq!(
                o.output, baseline.output,
                "{name} diverged under {trigger:?}"
            );
            assert!(o.samples_taken > 0, "{name}/{trigger:?} took no samples");
            assert!(
                !o.profile.is_empty(),
                "{name}/{trigger:?} collected nothing"
            );
        }
    }
}

#[test]
fn optimizer_preserves_benchmark_semantics_and_shrinks_code() {
    for w in isf_workloads::suite(Scale::Smoke) {
        let plain = w.compile();
        let optimized = isf_frontend::compile_optimized(w.source())
            .unwrap_or_else(|e| panic!("{}: {e}", w.name()));
        let a = run_with(&plain, Trigger::Never);
        let b = run_with(&optimized, Trigger::Never);
        assert_eq!(a.output, b.output, "{} diverged under -O", w.name());
        assert!(
            b.instructions <= a.instructions,
            "{}: optimizer added work",
            w.name()
        );
    }
}

#[test]
fn selective_instrumentation_on_benchmarks() {
    use std::collections::HashSet;
    for name in ["jess", "javac"] {
        let module = by_name(name, Scale::Smoke).unwrap().compile();
        let baseline = run_with(&module, Trigger::Never);
        let plan = ModulePlan::build(&module, &kinds());
        // Scout epoch over everything.
        let (all, all_stats) =
            instrument_module(&module, &plan, &Options::new(Strategy::FullDuplication)).unwrap();
        let scout = run_with(&all, Trigger::Counter { interval: 53 });
        let hot: HashSet<_> = isf_profile::hotness::functions_covering(&scout.profile, 0.9)
            .into_iter()
            .collect();
        assert!(!hot.is_empty(), "{name}: no hot methods found");
        // Selective epoch.
        let (sel, sel_stats) = isf_core::instrument_module_selective(
            &module,
            &plan,
            &Options::new(Strategy::FullDuplication),
            &hot,
        )
        .unwrap();
        assert!(sel_stats.space_increase_bytes() < all_stats.space_increase_bytes());
        let o = run_with(&sel, Trigger::Counter { interval: 53 });
        assert_eq!(o.output, baseline.output, "{name} diverged");
        assert!(o.cycles <= run_with(&all, Trigger::Counter { interval: 53 }).cycles);
        assert!(!o.profile.is_empty());
    }
}
