//! Differential and behavioral tests of the sample-burst tracing layer:
//! both execution engines must record byte-identical burst traces, the
//! traces must be internally consistent with the run's counters, and the
//! burst analyses must expose the §4.6 counter-vs-timer attribution skew
//! on a periodic workload.

use proptest::prelude::*;
use proptest::test_runner::TestCaseError;

use isf_core::{instrument_module, Options, Strategy};
use isf_exec::{
    run_naive_traced, run_traced, BurstRecord, ExecLimits, Outcome, TraceBuffer, Trigger, VmConfig,
};
use isf_instr::{
    BlockCountInstrumentation, CallEdgeInstrumentation, EdgeCountInstrumentation,
    FieldAccessInstrumentation, Instrumentation, ModulePlan,
};
use isf_integration_tests::compile;
use isf_integration_tests::program_gen::{render_program, stmt_strategy};
use isf_obs::{BurstReport, SkewReport};

fn config(trigger: Trigger) -> VmConfig {
    VmConfig {
        trigger,
        limits: ExecLimits::cycles(500_000_000),
        ..VmConfig::default()
    }
}

/// Runs both engines with a trace buffer and asserts the outcomes AND the
/// burst traces are identical, returning the trace.
fn traces_agree(
    module: &isf_ir::Module,
    trigger: Trigger,
) -> Result<(Outcome, Vec<BurstRecord>), TestCaseError> {
    let cfg = config(trigger);
    let mut fast = TraceBuffer::new();
    let outcome = run_traced(module, &cfg, &mut fast).expect("prepared engine runs");
    let mut reference = TraceBuffer::new();
    let ref_outcome = run_naive_traced(module, &cfg, &mut reference).expect("naive engine runs");
    prop_assert_eq!(&outcome, &ref_outcome, "outcomes diverged");
    prop_assert_eq!(
        fast.records(),
        reference.records(),
        "burst traces diverged between engines"
    );
    Ok((outcome, fast.into_records()))
}

fn all_kinds() -> Vec<&'static dyn Instrumentation> {
    vec![
        &CallEdgeInstrumentation,
        &FieldAccessInstrumentation,
        &BlockCountInstrumentation,
        &EdgeCountInstrumentation,
    ]
}

/// Asserts the internal consistency every trace must satisfy: one record
/// per sample, burst cycle lengths that tile the run (each burst ends at
/// its sample, before the sample-switch surcharge), and monotone
/// non-overlapping instruction counts.
fn trace_is_consistent(outcome: &Outcome, records: &[BurstRecord]) {
    assert_eq!(
        records.len() as u64,
        outcome.samples_taken,
        "one burst record per sample"
    );
    let total_cycles: u64 = records.iter().map(|r| r.len_cycles).sum();
    let total_instructions: u64 = records.iter().map(|r| r.len_instructions).sum();
    assert!(
        total_cycles <= outcome.cycles,
        "burst cycles {total_cycles} exceed run cycles {}",
        outcome.cycles
    );
    assert!(total_instructions <= outcome.instructions);
    for r in records {
        assert!(
            r.len_cycles > 0,
            "zero-length burst at func {} ip {}",
            r.func,
            r.check_ip
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn engines_record_identical_traces_counter(
        stmts in prop::collection::vec(stmt_strategy(), 1..6)
    ) {
        let module = compile(&render_program(&stmts));
        let plan = ModulePlan::build(&module, &all_kinds());
        for strategy in [Strategy::FullDuplication, Strategy::NoDuplication] {
            let (out, _) = instrument_module(&module, &plan, &Options::new(strategy)).unwrap();
            let (outcome, records) = traces_agree(&out, Trigger::Counter { interval: 3 })?;
            trace_is_consistent(&outcome, &records);
        }
    }

    #[test]
    fn engines_record_identical_traces_timer(
        stmts in prop::collection::vec(stmt_strategy(), 1..6)
    ) {
        // The timer trigger consults the simulated clock, the path where
        // the engines could most plausibly diverge in attribution.
        let module = compile(&render_program(&stmts));
        let plan = ModulePlan::build(&module, &all_kinds());
        let (out, _) = instrument_module(
            &module, &plan, &Options::new(Strategy::FullDuplication),
        ).unwrap();
        let (outcome, records) = traces_agree(&out, Trigger::TimerBit { period: 997 })?;
        trace_is_consistent(&outcome, &records);
    }
}

/// A periodic workload for the skew test: each outer iteration spends
/// nearly all of its cycles in one `busy(5000)` instruction — the paper's
/// long-latency instruction — then executes three cheap calls. With
/// checks on method entries only, the timer period expires inside `busy`,
/// so the *next* check — almost always `a`'s entry — absorbs the sample.
const PERIODIC: &str = "
fn a(x) { return x + 1; }
fn b(x) { return x + 2; }
fn c(x) { return x + 3; }
fn main() {
    var t = 0;
    var j = 0;
    while (j < 60) {
        busy(5000);
        t = a(t);
        t = b(t);
        t = c(t);
        j = j + 1;
    }
    print(t);
}
";

/// Pins the §4.6 pathology: on a periodic workload with a long check-free
/// stretch, the timer trigger funnels its samples onto the one check that
/// follows the stretch, while the counter trigger spreads them across the
/// sample points in execution proportion. The burst report makes the
/// difference quantitative.
#[test]
fn timer_trigger_skews_attribution_on_periodic_workload() {
    let module = compile(PERIODIC);
    // Checks on method entries only: busy's spin then has no sample
    // points, making it the long "instruction" the paper describes.
    let plan = ModulePlan::build(&module, &[]);
    let options = Options::new(Strategy::ChecksOnly {
        entries: true,
        backedges: false,
    });
    let (instrumented, _) = instrument_module(&module, &plan, &options).unwrap();

    let mut counter_buf = TraceBuffer::new();
    let counter_outcome = run_traced(
        &instrumented,
        &config(Trigger::Counter { interval: 13 }),
        &mut counter_buf,
    )
    .expect("counter run");
    // A period well below one busy() spin's cycle count, so the bit is
    // (almost) always set somewhere inside the spin.
    let mut timer_buf = TraceBuffer::new();
    let timer_outcome = run_traced(
        &instrumented,
        &config(Trigger::TimerBit { period: 1499 }),
        &mut timer_buf,
    )
    .expect("timer run");

    assert!(
        counter_outcome.samples_taken >= 10,
        "too few counter samples"
    );
    assert!(timer_outcome.samples_taken >= 10, "too few timer samples");

    let counter = BurstReport::from_records(counter_buf.records());
    let timer = BurstReport::from_records(timer_buf.records());
    let skew = SkewReport::between(&counter, &timer);

    // Counter: samples rotate through the four entry checks per
    // iteration, so no single sample point dominates.
    assert!(
        skew.counter_top_share < 0.5,
        "counter trigger should spread samples, top share {:.2}",
        skew.counter_top_share
    );
    // Timer: nearly every sample lands on the first check after the
    // check-free spin.
    assert!(
        skew.timer_top_share > 0.8,
        "timer trigger should funnel samples onto one point, top share {:.2}",
        skew.timer_top_share
    );
    // And the two attributions are far apart as distributions.
    assert!(
        skew.total_variation > 0.5,
        "attribution skew {:.2} should be large",
        skew.total_variation
    );
    // The timer's bursts are period-sized; the counter's follow the check
    // rate. Both analyses see every sample.
    assert_eq!(counter.samples(), counter_outcome.samples_taken);
    assert_eq!(timer.samples(), timer_outcome.samples_taken);
}

/// The trace records the same identity for a sample point in both engines
/// even on uninstrumented-but-checked code, and an untraced run is
/// unaffected by the tracing plumbing.
#[test]
fn traced_and_untraced_runs_agree() {
    let module = compile(PERIODIC);
    let plan = ModulePlan::build(&module, &[]);
    let (instrumented, _) =
        instrument_module(&module, &plan, &Options::new(Strategy::FullDuplication)).unwrap();
    let cfg = config(Trigger::Counter { interval: 7 });
    let untraced = isf_exec::run(&instrumented, &cfg).expect("untraced run");
    let mut buf = TraceBuffer::new();
    let traced = run_traced(&instrumented, &cfg, &mut buf).expect("traced run");
    assert_eq!(untraced, traced, "tracing changed the outcome");
    trace_is_consistent(&traced, buf.records());
    // Backedge flags are meaningful: this program is loop-heavy, so under
    // full duplication some samples must land on backedge checks.
    assert!(
        buf.records().iter().any(|r| r.backedge),
        "no backedge samples on a loop-heavy program"
    );
}
