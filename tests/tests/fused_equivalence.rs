//! Differential property testing of superinstruction fusion: a module
//! prepared with [`FuseMode::Fuse`] must be observationally identical to
//! the same module prepared with [`FuseMode::Off`] and to the
//! tree-walking reference — same output, same simulated cycles, same
//! counters, same collected profile, and (under tight budgets) the same
//! trap at the same point. The generator is biased toward fusion
//! candidates: constant operands, compare-and-branch, move chains, and
//! constant-index array accesses, with instrumented variants covering the
//! `Jump`+instrumentation and `PathIncr`-run fusions.

use proptest::prelude::*;
use proptest::test_runner::TestCaseError;

use isf_core::{instrument_module, Options, Strategy};
use isf_exec::{run_naive, run_prepared, ExecLimits, FuseMode, PreparedModule, Trigger, VmConfig};
use isf_instr::{
    BlockCountInstrumentation, CallEdgeInstrumentation, EdgeCountInstrumentation,
    FieldAccessInstrumentation, Instrumentation, ModulePlan, PathProfileInstrumentation,
};
use isf_integration_tests::compile;
use isf_integration_tests::program_gen::{render_program, stmt_strategy};

/// Asserts the fused and unfused preparations of `module` agree with each
/// other and with the naive reference on the complete
/// `Result<Outcome, VmError>` under `trigger` and `limits`.
fn fusion_is_observably_equivalent(
    module: &isf_ir::Module,
    trigger: Trigger,
    limits: ExecLimits,
) -> Result<(), TestCaseError> {
    let cfg = VmConfig {
        trigger,
        limits,
        ..VmConfig::default()
    };
    let fused = PreparedModule::prepare_with(module, &cfg.cost, FuseMode::Fuse);
    let unfused = PreparedModule::prepare_with(module, &cfg.cost, FuseMode::Off);
    let via_fused = run_prepared(&fused, &cfg);
    let via_unfused = run_prepared(&unfused, &cfg);
    let reference = run_naive(module, &cfg);
    prop_assert_eq!(&via_fused, &via_unfused, "fused diverged from unfused");
    prop_assert_eq!(&via_fused, &reference, "fused diverged from run_naive()");
    Ok(())
}

fn all_kinds() -> Vec<&'static dyn Instrumentation> {
    vec![
        &CallEdgeInstrumentation,
        &FieldAccessInstrumentation,
        &BlockCountInstrumentation,
        &EdgeCountInstrumentation,
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn fusion_preserves_outcomes_on_random_programs(
        stmts in prop::collection::vec(stmt_strategy(), 1..8)
    ) {
        let module = compile(&render_program(&stmts));
        fusion_is_observably_equivalent(
            &module,
            Trigger::Never,
            ExecLimits::cycles(500_000_000),
        )?;
    }

    #[test]
    fn fusion_preserves_outcomes_on_instrumented_programs(
        stmts in prop::collection::vec(stmt_strategy(), 1..6)
    ) {
        // Instrumented modules exercise the Jump+instrumentation fusion
        // (BlockCount/EdgeCount/CallEdge absorbed into the preceding
        // fall-through jump) and the Check boundary that blocks fusion.
        let module = compile(&render_program(&stmts));
        let plan = ModulePlan::build(&module, &all_kinds());
        for strategy in [Strategy::FullDuplication, Strategy::NoDuplication] {
            let (out, _) = instrument_module(&module, &plan, &Options::new(strategy)).unwrap();
            fusion_is_observably_equivalent(
                &out,
                Trigger::Counter { interval: 3 },
                ExecLimits::cycles(500_000_000),
            )?;
        }
    }

    #[test]
    fn fusion_preserves_outcomes_on_path_profiled_programs(
        stmts in prop::collection::vec(stmt_strategy(), 1..6)
    ) {
        // Ball–Larus instrumentation produces the PathIncr runs the
        // fusion pass folds into a single delta.
        let module = compile(&render_program(&stmts));
        let plan = ModulePlan::build(&module, &[&PathProfileInstrumentation]);
        let (out, _) =
            instrument_module(&module, &plan, &Options::new(Strategy::FullDuplication)).unwrap();
        fusion_is_observably_equivalent(
            &out,
            Trigger::Counter { interval: 2 },
            ExecLimits::cycles(500_000_000),
        )?;
    }

    #[test]
    fn fusion_traps_identically_under_tight_budgets(
        stmts in prop::collection::vec(stmt_strategy(), 1..8),
        max_cycles in 1u64..5_000,
    ) {
        // Fuel must exhaust at the same instruction whether or not that
        // instruction sits inside a fused group: the summed up-front
        // charge (plus the split `extra` charge of the branch fusions)
        // reproduces the unfused charge sequence exactly.
        let module = compile(&render_program(&stmts));
        let limits = ExecLimits {
            max_cycles: Some(max_cycles),
            ..ExecLimits::default()
        };
        fusion_is_observably_equivalent(&module, Trigger::Never, limits)?;
        let plan = ModulePlan::build(&module, &all_kinds());
        let (out, _) = instrument_module(
            &module, &plan, &Options::new(Strategy::FullDuplication),
        ).unwrap();
        fusion_is_observably_equivalent(&out, Trigger::Counter { interval: 3 }, limits)?;
    }

    #[test]
    fn fusion_agrees_under_timer_trigger(
        stmts in prop::collection::vec(stmt_strategy(), 1..6)
    ) {
        // The timer trigger consults the clock on every charge; a fused
        // group's merged tick catch-up must leave the trigger in the same
        // state as the unfused per-op ticks.
        let module = compile(&render_program(&stmts));
        let plan = ModulePlan::build(&module, &all_kinds());
        let (out, _) = instrument_module(
            &module, &plan, &Options::new(Strategy::FullDuplication),
        ).unwrap();
        fusion_is_observably_equivalent(
            &out,
            Trigger::TimerBit { period: 997 },
            ExecLimits::cycles(500_000_000),
        )?;
    }
}
