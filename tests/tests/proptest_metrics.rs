//! Property-based tests of the measurement substrate: the overlap metric
//! (paper §4.4) and the sampling triggers (§2.2).

use std::collections::HashMap;

use proptest::prelude::*;

use isf_profile::overlap::distribution_overlap;

fn dist_strategy() -> impl Strategy<Value = HashMap<u16, u64>> {
    prop::collection::hash_map(0u16..40, 1u64..10_000, 0..25)
}

proptest! {
    #[test]
    fn overlap_is_symmetric(a in dist_strategy(), b in dist_strategy()) {
        let ab = distribution_overlap(&a, &b);
        let ba = distribution_overlap(&b, &a);
        prop_assert!((ab - ba).abs() < 1e-9);
    }

    #[test]
    fn overlap_is_bounded(a in dist_strategy(), b in dist_strategy()) {
        let o = distribution_overlap(&a, &b);
        prop_assert!((0.0..=100.0 + 1e-9).contains(&o));
    }

    #[test]
    fn overlap_with_self_is_perfect(a in dist_strategy()) {
        prop_assume!(!a.is_empty());
        prop_assert!((distribution_overlap(&a, &a) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn overlap_is_scale_invariant(a in dist_strategy(), k in 1u64..50) {
        // A sampled profile is roughly the perfect profile divided by the
        // sample interval; exact proportional scaling must score 100.
        prop_assume!(!a.is_empty());
        let scaled: HashMap<u16, u64> = a.iter().map(|(&key, &v)| (key, v * k)).collect();
        prop_assert!((distribution_overlap(&a, &scaled) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn dropping_keys_only_lowers_overlap(a in dist_strategy()) {
        prop_assume!(a.len() >= 2);
        let mut b = a.clone();
        let &key = b.keys().next().unwrap();
        b.remove(&key);
        let o = distribution_overlap(&a, &b);
        prop_assert!(o <= 100.0 + 1e-9);
        // Everything remaining still overlaps by at least the smaller
        // proportions, so the score stays positive.
        prop_assert!(o > 0.0);
    }
}

mod triggers {
    use super::*;
    use isf_core::{instrument_module, Options, Strategy};
    use isf_exec::Trigger;
    use isf_instr::ModulePlan;
    use isf_integration_tests::{compile, run_with};

    fn looped_module(iters: u32) -> isf_ir::Module {
        compile(&format!(
            "fn main() {{ var i = 0; while (i < {iters}) {{ i = i + 1; }} }}"
        ))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]

        #[test]
        fn counter_takes_floor_n_over_interval_samples(
            iters in 1u32..400,
            interval in 1u64..50,
        ) {
            // A bare counting loop instrumented with full duplication
            // executes exactly (1 entry + iters backedge) checks when no
            // samples redirect control... sampling redirects but the
            // number of checks per logical iteration stays 1 (Property 1
            // at equality), so the trigger must fire exactly
            // floor(checks / interval) times.
            let module = looped_module(iters);
            let plan = ModulePlan::build(&module, &[]);
            let (out, _) = instrument_module(
                &module, &plan, &Options::new(Strategy::FullDuplication),
            ).unwrap();
            let o = run_with(&out, Trigger::Counter { interval });
            prop_assert_eq!(o.checks_executed, 1 + u64::from(iters));
            prop_assert_eq!(o.samples_taken, o.checks_executed / interval);
        }

        #[test]
        fn randomized_trigger_is_reproducible_and_near_target(
            iters in 200u32..600,
            seed in 1u64..1000,
        ) {
            let module = looped_module(iters);
            let plan = ModulePlan::build(&module, &[]);
            let (out, _) = instrument_module(
                &module, &plan, &Options::new(Strategy::FullDuplication),
            ).unwrap();
            let trigger = Trigger::CounterRandomized { interval: 10, jitter: 4, seed };
            let a = run_with(&out, trigger);
            let b = run_with(&out, trigger);
            prop_assert_eq!(a.samples_taken, b.samples_taken, "same seed, same run");
            // Expected samples ≈ checks / 10; jitter keeps it within
            // [checks/14, checks/6].
            let checks = a.checks_executed;
            prop_assert!(a.samples_taken >= checks / 14);
            prop_assert!(a.samples_taken <= checks / 6 + 1);
        }

        #[test]
        fn timer_takes_roughly_cycles_over_period_samples(
            iters in 200u32..800,
            period in 200u64..2000,
        ) {
            let module = looped_module(iters);
            let plan = ModulePlan::build(&module, &[]);
            let (out, _) = instrument_module(
                &module, &plan, &Options::new(Strategy::FullDuplication),
            ).unwrap();
            let o = run_with(&out, Trigger::TimerBit { period });
            let expected = o.cycles / period;
            // Each period sets the bit at most once and every set bit is
            // consumed by some later check (the loop checks constantly).
            prop_assert!(o.samples_taken <= expected + 1);
            prop_assert!(
                o.samples_taken + 2 >= expected.min(o.checks_executed),
                "{} samples for {} expected", o.samples_taken, expected
            );
        }
    }
}
