//! Regression tests for trap attribution inside fused groups: a fuel trap
//! landing on an interior component of a superinstruction (the group's
//! charge is folded into one quantum, so the machine's clock overshoots
//! the unfused schedule) must still yield exactly the naive engine's
//! instruction and cycle totals in the folded profile. Found by probing
//! PR 5's fusion layer: before the quantum-decomposition fix in
//! `fold_profile`, the fused profile counted every component of the
//! trapping group even when the unfused schedule would have stopped
//! mid-group.

use isf_exec::{
    run_naive_profiled, run_prepared_profiled, ExecLimits, FuseMode, OpProfile, PreparedModule,
    VmConfig,
};
use isf_integration_tests::compile;

/// Sweeps a cycle budget across every trap position of `src` and asserts
/// the fused profile totals equal the naive ones at each.
fn assert_trap_totals_match(src: &str, max_range: std::ops::Range<u64>) {
    for max in max_range {
        let module = compile(src);
        let cfg = VmConfig {
            limits: ExecLimits {
                max_cycles: Some(max),
                max_heap_words: None,
                max_stack: 64,
            },
            ..VmConfig::default()
        };
        let mut naive_profile = OpProfile::new();
        let naive = run_naive_profiled(&module, &cfg, &mut naive_profile);
        let fused = PreparedModule::prepare_with(&module, &cfg.cost, FuseMode::Fuse);
        let mut fused_profile = OpProfile::new();
        let fr = run_prepared_profiled(&fused, &cfg, &mut fused_profile);
        assert_eq!(
            naive.is_err(),
            fr.is_err(),
            "engines disagree on trapping at max={max}"
        );
        assert_eq!(
            fused_profile.total_instructions(),
            naive_profile.total_instructions(),
            "instruction divergence at max={max}"
        );
        assert_eq!(
            fused_profile.total_cycles(),
            naive_profile.total_cycles(),
            "cycle divergence at max={max}"
        );
    }
}

#[test]
fn fuel_trap_on_interior_const_of_bin_imm() {
    // `var b = a + 2` fuses into BinImm (Const + Bin under one charge
    // quantum); budgets 1..12 walk the trap across both components.
    assert_trap_totals_match("fn main() { var a = 1; var b = a + 2; print(b); }", 1..12);
}

#[test]
fn fuel_trap_inside_multi_quantum_field_groups() {
    // `self.pos = self.pos + 1` fuses into GetFieldBinImmSetField: three
    // charge quanta, the middle one folding two components. The budget
    // sweep covers every boundary, including mid-quantum.
    let src = "
        class C { field pos; method bump() { self.pos = self.pos + 1; return 0; } }
        fn main() {
            var c = new C;
            c.pos = 0;
            var i = 0;
            while (i < 4) { c.bump(); i = i + 1; }
            print(c.pos);
        }
    ";
    assert_trap_totals_match(src, 1..260);
}

#[test]
fn fuel_trap_inside_move_run_and_array_groups() {
    let src = "
        fn shuffle(a, b, c) { var x = a; var y = b; var z = c; return x + y + z; }
        fn main() {
            var arr = array(3);
            arr[0] = 7;
            arr[1] = 8;
            arr[2] = arr[0];
            print(shuffle(arr[0], arr[1], arr[2]));
        }
    ";
    assert_trap_totals_match(src, 1..160);
}
