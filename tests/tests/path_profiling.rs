//! Sampled Ball–Larus path profiling — the claim of the paper's §2 that
//! path profiling "works effectively when inserted as-is into the
//! duplicated code", and that one sampled burst is one complete path.

use isf_core::{instrument_module, Options, Strategy};
use isf_exec::Trigger;
use isf_instr::{ModulePlan, PathProfileInstrumentation};
use isf_integration_tests::{compile, run_with};

const THREE_WAY: &str = "
    fn step(x) {
        if (x % 3 == 0) { return x * 2; }
        if (x % 3 == 1) { return x + 7; }
        return x - 1;
    }
    fn main() {
        var i = 0;
        var acc = 0;
        while (i < 600) { acc = (acc + step(i)) % 1000003; i = i + 1; }
        print(acc);
    }";

#[test]
fn sampled_path_profile_matches_exhaustive_shape() {
    let module = compile(THREE_WAY);
    let plan = ModulePlan::build(&module, &[&PathProfileInstrumentation]);
    let (exh, _) = instrument_module(&module, &plan, &Options::new(Strategy::Exhaustive)).unwrap();
    let perfect = run_with(&exh, Trigger::Never).profile;
    assert!(perfect.total_path_events() > 600);

    let (sampled_m, _) =
        instrument_module(&module, &plan, &Options::new(Strategy::FullDuplication)).unwrap();
    // Interval 1: everything in duplicated code — identical profile.
    let all = run_with(&sampled_m, Trigger::Always).profile;
    assert_eq!(perfect.paths(), all.paths());

    // Moderate interval: fewer events, but high overlap — one burst is one
    // complete path.
    let sampled = run_with(&sampled_m, Trigger::Counter { interval: 7 }).profile;
    assert!(sampled.total_path_events() > 50);
    let overlap = isf_profile::overlap::path_overlap(&perfect, &sampled);
    assert!(overlap > 70.0, "path overlap {overlap:.1}% too low");
}

#[test]
fn partial_paths_are_dropped_not_misrecorded() {
    // Sampled bursts that enter mid-path must record nothing. Every
    // recorded id must also appear in the exhaustive run.
    let src = "
        fn main() {
            var i = 0;
            while (i < 400) {
                if (i % 5 == 0) { i = i + 2; } else { i = i + 1; }
            }
            print(i);
        }";
    let module = compile(src);
    let plan = ModulePlan::build(&module, &[&PathProfileInstrumentation]);
    let (exh, _) = instrument_module(&module, &plan, &Options::new(Strategy::Exhaustive)).unwrap();
    let perfect = run_with(&exh, Trigger::Never).profile;
    let (sampled_m, _) =
        instrument_module(&module, &plan, &Options::new(Strategy::FullDuplication)).unwrap();
    let sampled = run_with(&sampled_m, Trigger::Counter { interval: 11 }).profile;
    for key in sampled.paths().keys() {
        assert!(
            perfect.paths().contains_key(key),
            "sampled run invented path {key:?}"
        );
    }
}

#[test]
fn path_profiling_preserves_semantics_on_benchmarks() {
    for name in ["javac", "mtrt"] {
        let module = isf_workloads::by_name(name, isf_workloads::Scale::Smoke)
            .unwrap()
            .compile();
        let baseline = run_with(&module, Trigger::Never);
        let plan = ModulePlan::build(&module, &[&PathProfileInstrumentation]);
        for strategy in [Strategy::Exhaustive, Strategy::FullDuplication] {
            let (out, _) = instrument_module(&module, &plan, &Options::new(strategy)).unwrap();
            isf_ir::verify::verify_module(&out).unwrap();
            let o = run_with(&out, Trigger::Counter { interval: 13 });
            assert_eq!(o.output, baseline.output, "{name}/{strategy} diverged");
            assert!(o.profile.total_path_events() > 0, "{name}/{strategy}");
        }
    }
}

#[test]
fn path_profile_under_partial_duplication() {
    let module = compile(THREE_WAY);
    let plan = ModulePlan::build(&module, &[&PathProfileInstrumentation]);
    let (exh, _) = instrument_module(&module, &plan, &Options::new(Strategy::Exhaustive)).unwrap();
    let perfect = run_with(&exh, Trigger::Never).profile;
    let (partial, _) =
        instrument_module(&module, &plan, &Options::new(Strategy::PartialDuplication)).unwrap();
    let all = run_with(&partial, Trigger::Always).profile;
    assert_eq!(perfect.paths(), all.paths());
}
