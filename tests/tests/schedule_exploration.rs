//! Schedule-exploration coverage for the scheduling seam
//! ([`isf_exec::sched`]): recorded [`ScheduleTrace`]s replay
//! byte-identically on all four engine configurations (naive,
//! prepared-unfused, prepared-fused, prepared-fused-profiled), traps
//! mid-schedule included; the single-runnable tie-break rule holds; and
//! the schedule-independent invariants of commutative concurrent programs
//! survive seeded-random and PCT schedules.

use proptest::prelude::*;
use proptest::test_runner::TestCaseError;

use isf_core::{instrument_module, Options, Strategy};
use isf_exec::{
    cancel, run_naive_sched, run_prepared_sched, ExecLimits, FuseMode, NoMetrics, NoTrace,
    OpProfile, Outcome, PreparedModule, SchedControl, SchedPolicy, ScheduleTrace, TraceBuffer,
    Trigger, VmConfig, VmError,
};
use isf_instr::{CallEdgeInstrumentation, ModulePlan};
use isf_integration_tests::compile;
use isf_integration_tests::program_gen::{
    conc_program_strategy, render_conc_program, spill_program, ConcProgram, ConcShape,
};

fn config(trigger: Trigger) -> VmConfig {
    VmConfig {
        trigger,
        limits: ExecLimits::cycles(500_000_000),
        ..VmConfig::default()
    }
}

/// Instruments `module` with call-edge profiling under Full-Duplication,
/// so it executes checks and the sampling triggers have something to fire
/// on (an uninstrumented module never samples).
fn instrumented(module: &isf_ir::Module) -> isf_ir::Module {
    let plan = ModulePlan::build(module, &[&CallEdgeInstrumentation]);
    let (out, _) =
        instrument_module(module, &plan, &Options::new(Strategy::FullDuplication)).unwrap();
    out
}

/// One replay of `trace` on every engine configuration. Returns, per
/// configuration, the run result and the re-recorded trace (plus the
/// per-opcode profile where the configuration records one).
struct Replayed {
    label: &'static str,
    result: Result<Outcome, VmError>,
    trace: ScheduleTrace,
    profile: Option<OpProfile>,
}

fn replay_on_all_configs(
    module: &isf_ir::Module,
    cfg: &VmConfig,
    trace: &ScheduleTrace,
) -> Vec<Replayed> {
    let mut out = Vec::new();

    let mut profile = OpProfile::new();
    let mut ctl = SchedControl::replay(trace.clone());
    let result = run_naive_sched(module, cfg, &mut NoTrace, &mut profile, &mut ctl);
    out.push(Replayed {
        label: "naive",
        result,
        trace: ctl.take_trace(),
        profile: Some(profile),
    });

    let unfused = PreparedModule::prepare_with(module, &cfg.cost, FuseMode::Off);
    let mut profile = OpProfile::new();
    let mut ctl = SchedControl::replay(trace.clone());
    let result = run_prepared_sched(&unfused, cfg, &mut NoTrace, &mut profile, &mut ctl);
    out.push(Replayed {
        label: "prepared/unfused",
        result,
        trace: ctl.take_trace(),
        profile: Some(profile),
    });

    let fused = PreparedModule::prepare_with(module, &cfg.cost, FuseMode::Fuse);
    let mut ctl = SchedControl::replay(trace.clone());
    let result = run_prepared_sched(&fused, cfg, &mut NoTrace, &mut NoMetrics, &mut ctl);
    out.push(Replayed {
        label: "prepared/fused",
        result,
        trace: ctl.take_trace(),
        profile: None,
    });

    let mut profile = OpProfile::new();
    let mut ctl = SchedControl::replay(trace.clone());
    let result = run_prepared_sched(&fused, cfg, &mut NoTrace, &mut profile, &mut ctl);
    out.push(Replayed {
        label: "prepared/fused+profiled",
        result,
        trace: ctl.take_trace(),
        profile: Some(profile),
    });

    out
}

/// Records a schedule on the fused prepared engine under `policy`.
fn record_schedule(
    module: &isf_ir::Module,
    cfg: &VmConfig,
    policy: SchedPolicy,
) -> (Result<Outcome, VmError>, ScheduleTrace) {
    let fused = PreparedModule::prepare_with(module, &cfg.cost, FuseMode::Fuse);
    let mut ctl = SchedControl::recording(policy);
    let result = run_prepared_sched(&fused, cfg, &mut NoTrace, &mut NoMetrics, &mut ctl);
    (result, ctl.take_trace())
}

/// The full cross-configuration contract for one recorded schedule: every
/// configuration reproduces the recorded trace byte for byte and agrees on
/// the result; naive and unfused-prepared per-opcode profiles are equal;
/// profiled totals reconcile with the outcome counters.
fn assert_replays_agree(
    module: &isf_ir::Module,
    cfg: &VmConfig,
    recorded: &Result<Outcome, VmError>,
    trace: &ScheduleTrace,
    seed_line: &str,
) -> Result<(), TestCaseError> {
    let replays = replay_on_all_configs(module, cfg, trace);
    for r in &replays {
        prop_assert_eq!(
            &r.trace,
            trace,
            "{}: replayed trace diverged from recording ({})",
            r.label,
            seed_line
        );
        prop_assert_eq!(
            &r.result,
            recorded,
            "{}: replayed result diverged ({})",
            r.label,
            seed_line
        );
    }
    let naive_profile = replays[0].profile.as_ref().unwrap();
    let unfused_profile = replays[1].profile.as_ref().unwrap();
    prop_assert_eq!(
        naive_profile,
        unfused_profile,
        "naive vs unfused per-opcode profiles diverged ({})",
        seed_line
    );
    if let Ok(outcome) = recorded {
        for r in &replays {
            if let Some(p) = &r.profile {
                prop_assert_eq!(
                    p.total_cycles(),
                    outcome.cycles,
                    "{}: profile cycles don't reconcile ({})",
                    r.label,
                    seed_line
                );
                prop_assert_eq!(
                    p.total_instructions(),
                    outcome.instructions,
                    "{}: profile instructions don't reconcile ({})",
                    r.label,
                    seed_line
                );
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// A trace recorded under `SeededRandom` replays byte-identically on
    /// all four engine configurations, with the profile cross-checks, for
    /// arbitrary concurrency shapes and both the never- and per-thread
    /// sampling triggers.
    #[test]
    fn seeded_random_trace_replays_on_all_configs(
        p in conc_program_strategy(),
        seed in 0u64..1 << 48,
    ) {
        let plain = compile(&render_conc_program(&p));
        let sampled = instrumented(&plain);
        for (module, trigger) in [
            (&plain, Trigger::Never),
            (&sampled, Trigger::CounterPerThread { interval: 13 }),
        ] {
            let cfg = config(trigger);
            let policy = SchedPolicy::SeededRandom { seed };
            let (recorded, trace) = record_schedule(module, &cfg, policy);
            let seed_line = format!("{p:?} seed={seed} trigger={trigger:?}");
            assert_replays_agree(module, &cfg, &recorded, &trace, &seed_line)?;
        }
    }

    /// Commutative concurrent programs keep every counter except
    /// `thread_switches` invariant across schedules — round-robin,
    /// seeded-random and PCT all land on the same outcome.
    #[test]
    fn outcomes_are_schedule_invariant_across_policies(
        p in conc_program_strategy(),
        seed in 0u64..1 << 48,
    ) {
        let module = instrumented(&compile(&render_conc_program(&p)));
        let cfg = config(Trigger::CounterPerThread { interval: 7 });
        let (baseline, _) = record_schedule(&module, &cfg, SchedPolicy::RoundRobin);
        let baseline = baseline.expect("round-robin run completes");
        for policy in [
            SchedPolicy::SeededRandom { seed },
            SchedPolicy::PctPriority { seed, depth: 3 },
        ] {
            let (outcome, trace) = record_schedule(&module, &cfg, policy);
            let outcome = outcome.expect("explored run completes");
            prop_assert!(
                baseline.schedule_invariant_eq(&outcome),
                "{policy:?} changed a schedule-independent observable on {p:?}\n\
                 trace: {}",
                trace.to_compact_string()
            );
        }
    }
}

/// Satellite regression: a reschedule point with a single runnable
/// candidate is not a decision point, so a single-threaded program (every
/// `Yield` finds only the current thread runnable) records an empty trace
/// and runs identically under every policy.
#[test]
fn single_runnable_yield_is_policy_independent() {
    let module = compile(
        "fn main() {
            var i = 0;
            var acc = 0;
            while (i < 5000) { acc = acc + i; i = i + 1; }
            print(acc);
        }",
    );
    let cfg = config(Trigger::Never);
    let (baseline, baseline_trace) = record_schedule(&module, &cfg, SchedPolicy::RoundRobin);
    assert!(
        baseline_trace.is_empty(),
        "single-threaded run must have no decision points"
    );
    for policy in [
        SchedPolicy::SeededRandom { seed: 0xDEAD },
        SchedPolicy::PctPriority {
            seed: 0xBEEF,
            depth: 5,
        },
    ] {
        let (outcome, trace) = record_schedule(&module, &cfg, policy);
        assert!(trace.is_empty(), "{policy:?} recorded a non-decision");
        assert_eq!(outcome, baseline, "{policy:?} diverged with no decisions");
    }
}

/// The seam's default control reproduces the plain entry points exactly —
/// recording round-robin observes the identical run.
#[test]
fn recorded_round_robin_equals_plain_run() {
    let p = ConcProgram {
        workers: 4,
        iters: 5,
        shape: ConcShape::Contention,
    };
    let module = compile(&render_conc_program(&p));
    let cfg = config(Trigger::CounterPerThread { interval: 11 });
    let plain = isf_exec::run(&module, &cfg).expect("plain run");
    let (recorded, trace) = record_schedule(&module, &cfg, SchedPolicy::RoundRobin);
    assert_eq!(recorded.expect("recorded run"), plain);
    assert!(
        !trace.is_empty(),
        "contended multi-thread run should hit real decision points"
    );
}

/// Replay under a fuel budget that traps mid-schedule: every configuration
/// consumes the same prefix of the trace and reports the same trap.
#[test]
fn replay_survives_fuel_trap_mid_schedule() {
    let p = ConcProgram {
        workers: 4,
        iters: 6,
        shape: ConcShape::Contention,
    };
    let module = compile(&render_conc_program(&p));
    let cfg = config(Trigger::Never);
    let (full, trace) = record_schedule(&module, &cfg, SchedPolicy::SeededRandom { seed: 77 });
    let total = full.expect("clean run").cycles;
    assert!(!trace.is_empty());

    let tight = VmConfig {
        limits: ExecLimits::cycles(total / 2),
        ..cfg
    };
    let replays = replay_on_all_configs(&module, &tight, &trace);
    let first = &replays[0];
    assert!(
        first.result.is_err(),
        "half the budget must trap mid-schedule"
    );
    assert!(
        first.trace.len() < trace.len(),
        "trap should leave part of the schedule unconsumed"
    );
    for r in &replays[1..] {
        assert_eq!(r.result, first.result, "{} trapped differently", r.label);
        assert_eq!(
            r.trace, first.trace,
            "{} consumed a different schedule prefix",
            r.label
        );
    }
}

/// Replay under deterministic cancellation (`cancel_after`) mid-schedule:
/// same contract as the fuel trap, through the cancellation path.
#[test]
fn replay_survives_cancellation_mid_schedule() {
    let p = ConcProgram {
        workers: 3,
        iters: 6,
        shape: ConcShape::FanOut,
    };
    let module = compile(&render_conc_program(&p));
    let cfg = config(Trigger::Never);
    let (full, trace) = record_schedule(&module, &cfg, SchedPolicy::SeededRandom { seed: 123 });
    let total = full.expect("clean run").cycles;

    let _scope = cancel::arm(None, Some(total / 2));
    let replays = replay_on_all_configs(&module, &cfg, &trace);
    let first = &replays[0];
    assert!(first.result.is_err(), "cancellation must trap mid-schedule");
    for r in &replays[1..] {
        assert_eq!(r.result, first.result, "{} cancelled differently", r.label);
        assert_eq!(
            r.trace, first.trace,
            "{} consumed a different schedule prefix",
            r.label
        );
    }
}

/// Per-thread sample counts under `CounterPerThread` are a
/// schedule-independent multiset: each thread's fires depend only on its
/// own check stream. Checked across several seeded-random schedules via
/// the burst-trace sink.
#[test]
fn per_thread_sample_counts_are_permutation_equivalent() {
    let p = ConcProgram {
        workers: 5,
        iters: 6,
        shape: ConcShape::Contention,
    };
    let module = instrumented(&compile(&render_conc_program(&p)));
    let cfg = config(Trigger::CounterPerThread { interval: 5 });
    let fused = PreparedModule::prepare_with(&module, &cfg.cost, FuseMode::Fuse);

    let samples_by_thread = |seed: u64| -> Vec<(u32, u64)> {
        let mut buf = TraceBuffer::new();
        let mut ctl = SchedControl::recording(SchedPolicy::SeededRandom { seed });
        let outcome =
            run_prepared_sched(&fused, &cfg, &mut buf, &mut NoMetrics, &mut ctl).expect("runs");
        let mut counts = std::collections::BTreeMap::new();
        for r in buf.records() {
            *counts.entry(r.thread).or_insert(0u64) += 1;
        }
        assert_eq!(
            counts.values().sum::<u64>(),
            outcome.samples_taken,
            "burst records must account for every sample"
        );
        counts.into_iter().collect()
    };

    let reference = samples_by_thread(1);
    assert!(
        reference.iter().map(|&(_, n)| n).sum::<u64>() > 0,
        "the shape must actually sample"
    );
    for seed in 2..6 {
        assert_eq!(
            samples_by_thread(seed),
            reference,
            "per-thread sample counts changed across schedules (seed {seed})"
        );
    }
}

/// The >1024-thread spill program pushes `CounterPerThread` into its
/// sparse lane on every schedule, with the same schedule-invariant
/// outcome.
#[test]
fn thread_spill_program_is_schedule_invariant() {
    let module = instrumented(&compile(&spill_program(1100)));
    // A short timeslice forces frequent yield-point switches while the
    // spawn cascade keeps many threads runnable, so the run has real
    // decision points to randomize.
    let cfg = VmConfig {
        timeslice: 101,
        ..config(Trigger::CounterPerThread { interval: 3 })
    };
    let (baseline, trace) = record_schedule(&module, &cfg, SchedPolicy::RoundRobin);
    let baseline = baseline.expect("spill run completes");
    assert_eq!(baseline.output, vec![1100], "all spawned threads ran");
    assert!(!trace.is_empty());
    assert!(
        baseline.samples_taken > 0,
        "per-thread trigger must sample across the spill boundary"
    );
    for seed in [9u64, 10] {
        let (outcome, _) = record_schedule(&module, &cfg, SchedPolicy::SeededRandom { seed });
        let outcome = outcome.expect("spill run completes");
        assert!(
            baseline.schedule_invariant_eq(&outcome),
            "spill program diverged across schedules (seed {seed})"
        );
    }
}
