//! Differential property testing of cooperative cancellation: a run
//! cancelled at simulated cycle `K` (the deterministic
//! `--cancel-after-cycles` hook behind the harness watchdog) must stop at
//! exactly the point where a fuel budget of `K` cycles exhausts — same
//! function, same completion-vs-trap decision, same outcome when the
//! program fits — in *every* engine: the naive tree-walker and the
//! prepared engine unfused, statically fused, and profile-guided. If the
//! stop points diverged between engines, the fault-tolerant harness would
//! classify the same cell differently depending on which engine ran it.

use proptest::prelude::*;
use proptest::test_runner::TestCaseError;

use isf_core::{instrument_module, Options, Strategy};
use isf_exec::{
    cancel, run_naive, run_prepared, run_prepared_profiled, ExecLimits, FuseGuidance, FuseMode,
    OpProfile, PreparedModule, TrapKind, Trigger, VmConfig, VmError,
};
use isf_instr::{BlockCountInstrumentation, ModulePlan};
use isf_integration_tests::compile;
use isf_integration_tests::program_gen::{render_program, stmt_strategy};

type RunResult = Result<isf_exec::Outcome, VmError>;

/// Maps a cancelled result onto the shape its fuel-trapped twin must
/// have: `Cancelled` in function `f` corresponds to `FuelExhausted(k)`
/// in function `f`. Everything else passes through unchanged.
fn cancelled_as_fuel(result: RunResult, k: u64) -> RunResult {
    result.map_err(|e| {
        if e.kind == TrapKind::Cancelled {
            VmError {
                kind: TrapKind::FuelExhausted(k),
                ..e
            }
        } else {
            e
        }
    })
}

/// Runs `run` twice — once armed to cancel after `k` simulated cycles
/// with no fuel limit, once under a fuel budget of `k` — and asserts the
/// mapped results are identical.
fn cancel_matches_fuel(
    engine: &str,
    k: u64,
    run: impl Fn(&VmConfig) -> RunResult,
) -> Result<(), TestCaseError> {
    let cancelled = {
        let _scope = cancel::arm(None, Some(k));
        run(&VmConfig::default())
    };
    let fuel = run(&VmConfig {
        limits: ExecLimits::cycles(k),
        ..VmConfig::default()
    });
    prop_assert_eq!(
        cancelled_as_fuel(cancelled, k),
        fuel,
        "{} diverged at k={}",
        engine,
        k
    );
    Ok(())
}

/// Asserts cancellation-at-`k` ≡ fuel-budget-`k` on all four engine
/// configurations for `module`.
fn all_engines_cancel_like_fuel(module: &isf_ir::Module, k: u64) -> Result<(), TestCaseError> {
    cancel_matches_fuel("naive", k, |cfg| run_naive(module, cfg))?;

    let unfused = PreparedModule::prepare_with(module, &VmConfig::default().cost, FuseMode::Off);
    cancel_matches_fuel("prepared/unfused", k, |cfg| run_prepared(&unfused, cfg))?;

    let fused = PreparedModule::prepare_with(module, &VmConfig::default().cost, FuseMode::Fuse);
    cancel_matches_fuel("prepared/fused", k, |cfg| run_prepared(&fused, cfg))?;

    // Guided fusion as the harness produces it: a generous-budget warmup
    // run of the fused form collects the profile the guidance distills.
    let mut warmup = OpProfile::new();
    let warmup_cfg = VmConfig {
        limits: ExecLimits::cycles(500_000_000),
        ..VmConfig::default()
    };
    if run_prepared_profiled(&fused, &warmup_cfg, &mut warmup).is_ok() {
        let guided = PreparedModule::prepare_with(
            module,
            &VmConfig::default().cost,
            FuseMode::Guided(Box::new(FuseGuidance::from_profile(&warmup))),
        );
        cancel_matches_fuel("prepared/guided", k, |cfg| run_prepared(&guided, cfg))?;
    }
    Ok(())
}

/// Renders a program whose `main` spawns `threads` green threads one
/// after another. Thread ids are indices into the interpreter's thread
/// vector and finished threads keep their slot, so spawning past
/// `MAX_DENSE_THREADS` (1024) pushes the later workers' sampling
/// counters into the per-thread trigger's BTreeMap spill. Each thread is
/// joined before the next spawn, keeping the schedule deterministic.
fn spawn_heavy_program(threads: usize) -> String {
    let mut src = String::from(
        "fn work(n) { var s = 0; var i = 0; while (i < n) { s = s + i; i = i + 1; } return s; }\n\
         fn main() {\n    var t = spawn work(6);\n    join(t);\n",
    );
    for _ in 1..threads {
        src.push_str("    t = spawn work(6);\n    join(t);\n");
    }
    src.push_str("    print(1);\n}\n");
    src
}

/// The per-thread trigger's spill path (thread ids ≥ 1024) under
/// cancellation: sampling checks that bottom out in the sparse BTreeMap
/// must interleave with cancellation polls exactly like the dense path —
/// cancelling at cycle `k` still equals a fuel budget of `k` while the
/// spilled counters are live, in both engines.
#[test]
fn per_thread_spill_counters_cancel_like_fuel() {
    // 1100 spawned threads: ids 1..=1100, so the last 77 workers' check
    // counters live in the spill map, not the dense vector.
    let module = compile(&spawn_heavy_program(1100));
    let plan = ModulePlan::build(&module, &[&BlockCountInstrumentation]);
    let (instrumented, _) =
        instrument_module(&module, &plan, &Options::new(Strategy::NoDuplication)).unwrap();
    let trigger = Trigger::CounterPerThread { interval: 2 };

    // Sanity: the uncancelled run really drives every spawn and fires
    // per-thread samples (each worker executes several checks, so ids
    // past 1024 exercise the spill map).
    let full_cfg = VmConfig {
        trigger,
        limits: ExecLimits::cycles(500_000_000),
        ..VmConfig::default()
    };
    let full = run_naive(&instrumented, &full_cfg).expect("spawn-heavy program completes");
    assert!(full.entries_executed > 1100, "every spawned thread ran");
    assert!(full.samples_taken > 0, "per-thread counters fired");

    // Cancellation points: mid-run, and deep in the tail where the
    // currently-running thread's id is past the dense bound (spawns are
    // serialized, so cycle fraction ~ thread-id fraction; 1024/1100 of
    // the way through is ~93%).
    let c = full.cycles;
    let fused = PreparedModule::prepare_with(&instrumented, &full_cfg.cost, FuseMode::Fuse);
    for k in [c / 2, c * 95 / 100, c * 99 / 100] {
        cancel_matches_fuel("naive+per-thread-spill", k, |cfg| {
            run_naive(&instrumented, &VmConfig { trigger, ..*cfg })
        })
        .unwrap();
        cancel_matches_fuel("fused+per-thread-spill", k, |cfg| {
            run_prepared(&fused, &VmConfig { trigger, ..*cfg })
        })
        .unwrap();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn cancellation_at_k_equals_a_fuel_budget_of_k(
        stmts in prop::collection::vec(stmt_strategy(), 1..8),
        k in 1u64..5_000,
    ) {
        // Small `k` lands mid-execution in most generated programs;
        // occasionally the program fits and both runs must then complete
        // with identical outcomes.
        let module = compile(&render_program(&stmts));
        all_engines_cancel_like_fuel(&module, k)?;
    }

    #[test]
    fn cancellation_is_trigger_independent(
        stmts in prop::collection::vec(stmt_strategy(), 1..6),
        k in 1u64..3_000,
    ) {
        // The counter trigger adds Check dispatches to the stream; the
        // cancel point must still equal the fuel point under it.
        let module = compile(&render_program(&stmts));
        let trigger = Trigger::Counter { interval: 3 };
        cancel_matches_fuel("naive+counter", k, |cfg| {
            run_naive(&module, &VmConfig { trigger, ..*cfg })
        })?;
        let fused =
            PreparedModule::prepare_with(&module, &VmConfig::default().cost, FuseMode::Fuse);
        cancel_matches_fuel("fused+counter", k, |cfg| {
            run_prepared(&fused, &VmConfig { trigger, ..*cfg })
        })?;
    }
}
