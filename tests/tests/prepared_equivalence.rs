//! Differential property testing of the execution engines: the pre-decoded
//! arena interpreter ([`isf_exec::run_prepared`], and [`isf_exec::run`]
//! which prepares internally) must be observationally identical to the
//! tree-walking reference ([`isf_exec::run_naive`]) — same output, same
//! simulated cycles, same counters, same collected profile — on arbitrary
//! programs, not just the benchmark suite. Instrumented and path-profiled
//! variants are included so the decoded forms of `check`, the profiling
//! ops and the Ball–Larus path ops are all exercised.

use proptest::prelude::*;
use proptest::test_runner::TestCaseError;

use isf_core::{instrument_module, Options, Strategy};
use isf_exec::{run, run_naive, run_prepared, ExecLimits, PreparedModule, Trigger, VmConfig};
use isf_instr::{
    BlockCountInstrumentation, CallEdgeInstrumentation, EdgeCountInstrumentation,
    FieldAccessInstrumentation, Instrumentation, ModulePlan, PathProfileInstrumentation,
};
use isf_integration_tests::compile;
use isf_integration_tests::program_gen::{render_program, stmt_strategy};

/// Asserts all three engines agree on the complete [`isf_exec::Outcome`]
/// for `module` under `trigger` — output, cycles, instructions, profile
/// and every check/sample/yield/entry/backedge/switch counter.
fn engines_agree(module: &isf_ir::Module, trigger: Trigger) -> Result<(), TestCaseError> {
    let cfg = VmConfig {
        trigger,
        limits: ExecLimits::cycles(500_000_000),
        ..VmConfig::default()
    };
    let reference = run_naive(module, &cfg).expect("naive engine runs");
    let via_run = run(module, &cfg).expect("run succeeds");
    prop_assert_eq!(&via_run, &reference, "run() diverged from run_naive()");
    // One preparation, two runs: repeated runs of one PreparedModule must
    // be deterministic and equal to the reference as well.
    let prepared = PreparedModule::prepare(module, &cfg.cost);
    let first = run_prepared(&prepared, &cfg).expect("prepared run succeeds");
    let second = run_prepared(&prepared, &cfg).expect("prepared rerun succeeds");
    prop_assert_eq!(
        &first,
        &reference,
        "run_prepared() diverged from run_naive()"
    );
    prop_assert_eq!(&first, &second, "repeated prepared runs diverged");
    Ok(())
}

/// Asserts all three engines agree on the complete
/// `Result<Outcome, VmError>` under `limits` — including the trap kind
/// and the function it fired in. Resource budgets must exhaust at the
/// same instruction in every engine, or the fault-tolerant harness would
/// classify the same cell differently depending on the engine that ran
/// it.
fn engines_agree_on_result(
    module: &isf_ir::Module,
    trigger: Trigger,
    limits: ExecLimits,
) -> Result<(), TestCaseError> {
    let cfg = VmConfig {
        trigger,
        limits,
        ..VmConfig::default()
    };
    let reference = run_naive(module, &cfg);
    let via_run = run(module, &cfg);
    prop_assert_eq!(&via_run, &reference, "run() diverged from run_naive()");
    let prepared = PreparedModule::prepare(module, &cfg.cost);
    let first = run_prepared(&prepared, &cfg);
    let second = run_prepared(&prepared, &cfg);
    prop_assert_eq!(
        &first,
        &reference,
        "run_prepared() diverged from run_naive()"
    );
    prop_assert_eq!(&first, &second, "repeated prepared runs diverged");
    Ok(())
}

fn all_kinds() -> Vec<&'static dyn Instrumentation> {
    vec![
        &CallEdgeInstrumentation,
        &FieldAccessInstrumentation,
        &BlockCountInstrumentation,
        &EdgeCountInstrumentation,
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn engines_agree_on_random_programs(
        stmts in prop::collection::vec(stmt_strategy(), 1..8)
    ) {
        let module = compile(&render_program(&stmts));
        engines_agree(&module, Trigger::Never)?;
    }

    #[test]
    fn engines_agree_on_instrumented_programs(
        stmts in prop::collection::vec(stmt_strategy(), 1..6)
    ) {
        // Sampled instrumentation decodes to Check plus the profiling ops;
        // a counter trigger exercises both the sampled and deferred paths.
        let module = compile(&render_program(&stmts));
        let plan = ModulePlan::build(&module, &all_kinds());
        for strategy in [Strategy::FullDuplication, Strategy::NoDuplication] {
            let (out, _) = instrument_module(&module, &plan, &Options::new(strategy)).unwrap();
            engines_agree(&out, Trigger::Counter { interval: 3 })?;
        }
    }

    #[test]
    fn engines_agree_on_path_profiled_programs(
        stmts in prop::collection::vec(stmt_strategy(), 1..6)
    ) {
        // Ball–Larus instrumentation decodes to PathStart/PathIncr/PathEnd.
        let module = compile(&render_program(&stmts));
        let plan = ModulePlan::build(&module, &[&PathProfileInstrumentation]);
        let (out, _) =
            instrument_module(&module, &plan, &Options::new(Strategy::FullDuplication)).unwrap();
        engines_agree(&out, Trigger::Counter { interval: 2 })?;
    }

    #[test]
    fn engines_trap_identically_under_tight_budgets(
        stmts in prop::collection::vec(stmt_strategy(), 1..8),
        max_cycles in 1u64..5_000,
        max_heap in 1u64..128,
        max_stack in 2usize..24,
    ) {
        // Tight limits make most generated programs trap with fuel, heap
        // or stack exhaustion somewhere mid-execution; every engine must
        // trap at the same point with the same `VmError` (or complete
        // with the same outcome when the program fits the budget).
        let module = compile(&render_program(&stmts));
        let limits = ExecLimits {
            max_cycles: Some(max_cycles),
            max_heap_words: Some(max_heap),
            max_stack,
        };
        engines_agree_on_result(&module, Trigger::Never, limits)?;
        engines_agree_on_result(&module, Trigger::Counter { interval: 3 }, limits)?;
    }

    #[test]
    fn instrumented_engines_trap_identically_under_tight_budgets(
        stmts in prop::collection::vec(stmt_strategy(), 1..6),
        max_cycles in 1u64..5_000,
    ) {
        // The instrumented module runs the same program through Check and
        // the profiling ops; fuel must still exhaust at identical points.
        let module = compile(&render_program(&stmts));
        let plan = ModulePlan::build(&module, &all_kinds());
        let limits = ExecLimits {
            max_cycles: Some(max_cycles),
            ..ExecLimits::default()
        };
        for strategy in [Strategy::FullDuplication, Strategy::NoDuplication] {
            let (out, _) = instrument_module(&module, &plan, &Options::new(strategy)).unwrap();
            engines_agree_on_result(&out, Trigger::Counter { interval: 3 }, limits)?;
        }
    }

    #[test]
    fn engines_agree_under_timer_trigger(
        stmts in prop::collection::vec(stmt_strategy(), 1..6)
    ) {
        // The timer trigger is the one path where `charge` consults the
        // clock; both engines must attribute samples identically.
        let module = compile(&render_program(&stmts));
        let plan = ModulePlan::build(&module, &all_kinds());
        let (out, _) = instrument_module(
            &module, &plan, &Options::new(Strategy::FullDuplication),
        ).unwrap();
        engines_agree(&out, Trigger::TimerBit { period: 997 })?;
    }
}
