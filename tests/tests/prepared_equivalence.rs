//! Differential property testing of the execution engines: the pre-decoded
//! arena interpreter ([`isf_exec::run_prepared`], and [`isf_exec::run`]
//! which prepares internally) must be observationally identical to the
//! tree-walking reference ([`isf_exec::run_naive`]) — same output, same
//! simulated cycles, same counters, same collected profile — on arbitrary
//! programs, not just the benchmark suite. Instrumented and path-profiled
//! variants are included so the decoded forms of `check`, the profiling
//! ops and the Ball–Larus path ops are all exercised.

use proptest::prelude::*;
use proptest::strategy::Strategy as _;
use proptest::test_runner::TestCaseError;

use isf_core::{instrument_module, Options, Strategy};
use isf_exec::{run, run_naive, run_prepared, PreparedModule, Trigger, VmConfig};
use isf_instr::{
    BlockCountInstrumentation, CallEdgeInstrumentation, EdgeCountInstrumentation,
    FieldAccessInstrumentation, Instrumentation, ModulePlan, PathProfileInstrumentation,
};
use isf_integration_tests::compile;

/// Statement fragments rendered into a Jive `main`. Every operation is
/// total (no division, bounded loops), so programs terminate trap-free.
#[derive(Debug, Clone)]
enum Stmt {
    Assign(u8, Expr),
    SetF(Expr),
    Print(Expr),
    If(Expr, Vec<Stmt>, Vec<Stmt>),
    Loop(u8, Vec<Stmt>),
}

#[derive(Debug, Clone)]
enum Expr {
    Lit(i8),
    Var(u8),
    FieldF,
    Add(Box<Expr>, Box<Expr>),
    Mul(Box<Expr>, Box<Expr>),
    Mod(Box<Expr>, u8),
    Helper(Box<Expr>),
    Bump(Box<Expr>),
}

fn expr_strategy() -> impl proptest::strategy::Strategy<Value = Expr> {
    let leaf = prop_oneof![
        any::<i8>().prop_map(Expr::Lit),
        (0u8..4).prop_map(Expr::Var),
        Just(Expr::FieldF),
    ];
    leaf.prop_recursive(3, 20, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Add(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Mul(a.into(), b.into())),
            (inner.clone(), 1u8..17).prop_map(|(a, k)| Expr::Mod(a.into(), k)),
            inner.clone().prop_map(|a| Expr::Helper(a.into())),
            inner.prop_map(|a| Expr::Bump(a.into())),
        ]
    })
}

fn stmt_strategy() -> impl proptest::strategy::Strategy<Value = Stmt> {
    let simple = prop_oneof![
        ((0u8..4), expr_strategy()).prop_map(|(v, e)| Stmt::Assign(v, e)),
        expr_strategy().prop_map(Stmt::SetF),
        expr_strategy().prop_map(Stmt::Print),
    ];
    simple.prop_recursive(2, 12, 4, |inner| {
        prop_oneof![
            (
                expr_strategy(),
                prop::collection::vec(inner.clone(), 0..3),
                prop::collection::vec(inner.clone(), 0..3)
            )
                .prop_map(|(c, t, e)| Stmt::If(c, t, e)),
            ((0u8..5), prop::collection::vec(inner, 1..3)).prop_map(|(n, b)| Stmt::Loop(n, b)),
        ]
    })
}

fn render_expr(e: &Expr, out: &mut String) {
    match e {
        Expr::Lit(v) => out.push_str(&format!("({v})")),
        Expr::Var(v) => out.push_str(&format!("v{v}")),
        Expr::FieldF => out.push_str("p.f"),
        Expr::Add(a, b) | Expr::Mul(a, b) => {
            let op = if matches!(e, Expr::Add(..)) { "+" } else { "*" };
            out.push('(');
            render_expr(a, out);
            out.push_str(&format!(" {op} "));
            render_expr(b, out);
            out.push(')');
        }
        Expr::Mod(a, k) => {
            out.push('(');
            render_expr(a, out);
            out.push_str(&format!(" % {k})"));
        }
        Expr::Helper(a) => {
            out.push_str("helper(");
            render_expr(a, out);
            out.push(')');
        }
        Expr::Bump(a) => {
            out.push_str("p.bump(");
            render_expr(a, out);
            out.push(')');
        }
    }
}

fn render_stmts(stmts: &[Stmt], out: &mut String, indent: usize, loop_id: &mut u32) {
    let pad = "    ".repeat(indent);
    for s in stmts {
        match s {
            Stmt::Assign(v, e) => {
                out.push_str(&format!("{pad}v{v} = "));
                render_expr(e, out);
                out.push_str(";\n");
            }
            Stmt::SetF(e) => {
                out.push_str(&format!("{pad}p.f = "));
                render_expr(e, out);
                out.push_str(";\n");
            }
            Stmt::Print(e) => {
                out.push_str(&format!("{pad}print("));
                render_expr(e, out);
                out.push_str(");\n");
            }
            Stmt::If(c, t, e) => {
                out.push_str(&format!("{pad}if (("));
                render_expr(c, out);
                out.push_str(") % 2 == 0) {\n");
                render_stmts(t, out, indent + 1, loop_id);
                out.push_str(&format!("{pad}}} else {{\n"));
                render_stmts(e, out, indent + 1, loop_id);
                out.push_str(&format!("{pad}}}\n"));
            }
            Stmt::Loop(n, body) => {
                let id = *loop_id;
                *loop_id += 1;
                out.push_str(&format!("{pad}var loop{id} = 0;\n"));
                out.push_str(&format!("{pad}while (loop{id} < {n}) {{\n"));
                render_stmts(body, out, indent + 1, loop_id);
                out.push_str(&format!("{pad}    loop{id} = loop{id} + 1;\n"));
                out.push_str(&format!("{pad}}}\n"));
            }
        }
    }
}

fn render_program(stmts: &[Stmt]) -> String {
    let mut body = String::new();
    let mut loop_id = 0;
    render_stmts(stmts, &mut body, 1, &mut loop_id);
    format!(
        "class P {{
    field f; field g;
    method bump(x) {{ self.f = self.f + x; return self.f; }}
}}
fn helper(x) {{ return (x * 7 + 3) % 1000003; }}
fn main() {{
    var v0 = 1; var v1 = 2; var v2 = 3; var v3 = 5;
    var p = new P;
{body}    print(v0); print(v1); print(v2); print(v3);
    print(p.f);
}}"
    )
}

/// Asserts all three engines agree on the complete [`isf_exec::Outcome`]
/// for `module` under `trigger` — output, cycles, instructions, profile
/// and every check/sample/yield/entry/backedge/switch counter.
fn engines_agree(module: &isf_ir::Module, trigger: Trigger) -> Result<(), TestCaseError> {
    let cfg = VmConfig {
        trigger,
        max_cycles: Some(500_000_000),
        ..VmConfig::default()
    };
    let reference = run_naive(module, &cfg).expect("naive engine runs");
    let via_run = run(module, &cfg).expect("run succeeds");
    prop_assert_eq!(&via_run, &reference, "run() diverged from run_naive()");
    // One preparation, two runs: repeated runs of one PreparedModule must
    // be deterministic and equal to the reference as well.
    let prepared = PreparedModule::prepare(module, &cfg.cost);
    let first = run_prepared(&prepared, &cfg).expect("prepared run succeeds");
    let second = run_prepared(&prepared, &cfg).expect("prepared rerun succeeds");
    prop_assert_eq!(
        &first,
        &reference,
        "run_prepared() diverged from run_naive()"
    );
    prop_assert_eq!(&first, &second, "repeated prepared runs diverged");
    Ok(())
}

fn all_kinds() -> Vec<&'static dyn Instrumentation> {
    vec![
        &CallEdgeInstrumentation,
        &FieldAccessInstrumentation,
        &BlockCountInstrumentation,
        &EdgeCountInstrumentation,
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn engines_agree_on_random_programs(
        stmts in prop::collection::vec(stmt_strategy(), 1..8)
    ) {
        let module = compile(&render_program(&stmts));
        engines_agree(&module, Trigger::Never)?;
    }

    #[test]
    fn engines_agree_on_instrumented_programs(
        stmts in prop::collection::vec(stmt_strategy(), 1..6)
    ) {
        // Sampled instrumentation decodes to Check plus the profiling ops;
        // a counter trigger exercises both the sampled and deferred paths.
        let module = compile(&render_program(&stmts));
        let plan = ModulePlan::build(&module, &all_kinds());
        for strategy in [Strategy::FullDuplication, Strategy::NoDuplication] {
            let (out, _) = instrument_module(&module, &plan, &Options::new(strategy)).unwrap();
            engines_agree(&out, Trigger::Counter { interval: 3 })?;
        }
    }

    #[test]
    fn engines_agree_on_path_profiled_programs(
        stmts in prop::collection::vec(stmt_strategy(), 1..6)
    ) {
        // Ball–Larus instrumentation decodes to PathStart/PathIncr/PathEnd.
        let module = compile(&render_program(&stmts));
        let plan = ModulePlan::build(&module, &[&PathProfileInstrumentation]);
        let (out, _) =
            instrument_module(&module, &plan, &Options::new(Strategy::FullDuplication)).unwrap();
        engines_agree(&out, Trigger::Counter { interval: 2 })?;
    }

    #[test]
    fn engines_agree_under_timer_trigger(
        stmts in prop::collection::vec(stmt_strategy(), 1..6)
    ) {
        // The timer trigger is the one path where `charge` consults the
        // clock; both engines must attribute samples identically.
        let module = compile(&render_program(&stmts));
        let plan = ModulePlan::build(&module, &all_kinds());
        let (out, _) = instrument_module(
            &module, &plan, &Options::new(Strategy::FullDuplication),
        ).unwrap();
        engines_agree(&out, Trigger::TimerBit { period: 997 })?;
    }
}
