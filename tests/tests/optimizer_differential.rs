//! Seed-based differential testing of the optimizer passes, individually
//! and in sequence — the harness that caught the block-renumbering
//! collision fixed in `isf_ir::passes::simplify_cfg`.
//!
//! Complements the proptest suite: the LCG generator covers deeper
//! statement nesting and runs each pass in isolation, so a failure names
//! the guilty pass directly.

use isf_exec::Trigger;
use isf_integration_tests::{compile, run_with};

fn lcg(s: &mut u64) -> u64 {
    *s = s
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *s >> 33
}

fn gen_expr(s: &mut u64, depth: u32) -> String {
    if depth == 0 {
        match lcg(s) % 4 {
            0 => format!("({})", (lcg(s) % 100) as i64 - 50),
            1 => format!("v{}", lcg(s) % 4),
            2 => "p.f".into(),
            _ => "p.g".into(),
        }
    } else {
        let a = gen_expr(s, depth - 1);
        let b = gen_expr(s, depth - 1);
        match lcg(s) % 7 {
            0 => format!("({a} + {b})"),
            1 => format!("({a} - {b})"),
            2 => format!("({a} * {b})"),
            3 => format!("({a} ^ {b})"),
            4 => format!("({a} % {})", 1 + lcg(s) % 16),
            5 => format!("helper({a})"),
            _ => format!("p.bump({a})"),
        }
    }
}

fn gen_stmts(s: &mut u64, n: u64, depth: u32, loop_id: &mut u32) -> String {
    let mut out = String::new();
    for _ in 0..n {
        match lcg(s) % 6 {
            0 => out += &format!("v{} = {};\n", lcg(s) % 4, gen_expr(s, 2)),
            1 => out += &format!("p.f = {};\n", gen_expr(s, 2)),
            2 => out += &format!("print({});\n", gen_expr(s, 2)),
            3 if depth > 0 => {
                let c = gen_expr(s, 1);
                let n1 = 1 + lcg(s) % 3;
                let t = gen_stmts(s, n1, depth - 1, loop_id);
                let n2 = lcg(s) % 3;
                let e = gen_stmts(s, n2, depth - 1, loop_id);
                out += &format!("if (({c}) % 2 == 0) {{\n{t}}} else {{\n{e}}}\n");
            }
            4 if depth > 0 => {
                let id = *loop_id;
                *loop_id += 1;
                let k = lcg(s) % 5;
                let n1 = 1 + lcg(s) % 3;
                let b = gen_stmts(s, n1, depth - 1, loop_id);
                out += &format!(
                    "var loop{id} = 0;\nwhile (loop{id} < {k}) {{\n{b}loop{id} = loop{id} + 1;\n}}\n"
                );
            }
            _ => out += &format!("p.g = {};\n", gen_expr(s, 2)),
        }
    }
    out
}

fn program(seed: u64) -> String {
    let mut s = seed;
    let mut loop_id = 0;
    let body = gen_stmts(&mut s, 4 + seed % 5, 2, &mut loop_id);
    format!(
        "class P {{ field f; field g; method bump(x) {{ self.f = self.f + x; return self.f; }} }}
fn helper(x) {{ return (x * 7 + 3) % 1000003; }}
fn main() {{
var v0 = 1; var v1 = 2; var v2 = 3; var v3 = 5;
var p = new P;
{body}
print(v0); print(v1); print(v2); print(v3); print(p.f); print(p.g);
}}"
    )
}

#[test]
fn pass_sequences_preserve_semantics_across_seeds() {
    // Pass sequences: each pass alone, pairwise orders, the full bundle
    // twice (to catch fixpoint interactions).
    let sequences: [(&str, &[u8]); 7] = [
        ("fold", &[0]),
        ("simplify", &[1]),
        ("dce", &[2]),
        ("fold,simplify", &[0, 1]),
        ("simplify,fold", &[1, 0]),
        ("fold,simplify,dce", &[0, 1, 2]),
        ("bundle x2", &[0, 1, 2, 0, 1, 2]),
    ];
    for seed in 0..150u64 {
        let src = program(seed);
        let plain = compile(&src);
        let base = run_with(&plain, Trigger::Never);
        for (name, seq) in sequences {
            let mut m = plain.clone();
            let ids: Vec<_> = m.func_ids().collect();
            for id in ids {
                let f = m.function_mut(id);
                for pass in seq {
                    match pass {
                        0 => {
                            isf_ir::passes::fold_constants(f);
                        }
                        1 => {
                            isf_ir::passes::simplify_cfg(f);
                        }
                        _ => {
                            isf_ir::passes::eliminate_dead_code(f);
                        }
                    }
                }
            }
            isf_ir::verify::verify_module(&m)
                .unwrap_or_else(|e| panic!("seed {seed}, {name}: verifier: {e}\n{src}"));
            let o = run_with(&m, Trigger::Never);
            assert_eq!(
                o.output, base.output,
                "seed {seed}: pass sequence `{name}` diverged\n{src}"
            );
            assert!(
                o.instructions <= base.instructions,
                "seed {seed}: `{name}` made the program slower"
            );
        }
    }
}
