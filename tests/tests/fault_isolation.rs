//! Fault-tolerance properties spanning the execution engines and the
//! harness runner: no `(Trigger, ExecLimits)` combination makes an engine
//! panic — failures always surface as classified `VmError`s, identically
//! in every engine — and a trapping cell inside the parallel harness
//! becomes an `error` JSONL record while its siblings complete, with a
//! stream that is byte-identical across job counts.

use std::sync::Mutex;

use proptest::prelude::*;

use isf_exec::{run, run_naive, run_prepared, ExecLimits, PreparedModule, Trigger, VmConfig};
use isf_harness::runner::{self, cell, par_cells_isolated, split_results};
use isf_integration_tests::compile;
use isf_integration_tests::program_gen::{render_program, stmt_strategy};
use isf_obs::emit;

/// Serializes tests that mutate process-global harness state (the jobs
/// override, the emit mode).
static GLOBALS: Mutex<()> = Mutex::new(());

fn trigger_strategy() -> impl Strategy<Value = Trigger> {
    prop_oneof![
        Just(Trigger::Never),
        Just(Trigger::Always),
        (1u64..200).prop_map(|interval| Trigger::Counter { interval }),
        (1u64..200).prop_map(|interval| Trigger::CounterPerThread { interval }),
        ((1u64..100), (0u64..20), any::<u64>()).prop_map(|(interval, jitter, seed)| {
            Trigger::CounterRandomized {
                interval,
                jitter,
                seed,
            }
        }),
        (1u64..2_000).prop_map(|period| Trigger::TimerBit { period }),
    ]
}

fn limits_strategy() -> impl Strategy<Value = ExecLimits> {
    // A fuel draw of 0 means "effectively unlimited" — a ceiling far above
    // anything the generated programs execute — so the no-fuel-trap path
    // is exercised without risking an unbounded test run. A heap draw of 0
    // means a genuinely unlimited heap.
    (0u64..20_000, 0u64..512, 2usize..64).prop_map(|(fuel, heap, max_stack)| ExecLimits {
        max_cycles: Some(if fuel == 0 { 100_000_000 } else { fuel }),
        max_heap_words: (heap > 0).then_some(heap),
        max_stack,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn no_trigger_limits_combination_panics_an_engine(
        stmts in prop::collection::vec(stmt_strategy(), 1..6),
        trigger in trigger_strategy(),
        limits in limits_strategy(),
    ) {
        // The engines' fault contract under arbitrary budgets: every
        // engine returns a `Result` — it never panics, whatever the
        // trigger or limits — and all of them return the same one.
        let module = compile(&render_program(&stmts));
        let cfg = VmConfig { trigger, limits, ..VmConfig::default() };
        let reference = run_naive(&module, &cfg);
        let fast = run(&module, &cfg);
        prop_assert_eq!(&fast, &reference, "run() diverged from run_naive()");
        let prepared = PreparedModule::prepare(&module, &cfg.cost);
        let replay = run_prepared(&prepared, &cfg);
        prop_assert_eq!(&replay, &reference, "run_prepared() diverged from run_naive()");
    }
}

#[test]
fn trapping_cell_yields_error_record_while_siblings_complete() {
    let _guard = GLOBALS.lock().unwrap();
    let good = compile("fn main() { var i = 0; while (i < 100) { i = i + 1; } }");
    let bad = compile("fn main() { var x = 1 / 0; }");
    emit::set_mode(emit::EmitMode::Json);
    emit::set_redact(true);
    let run_once = |jobs: usize| {
        runner::set_jobs(jobs);
        let cells = vec![
            cell("fault/ok-before", || {
                runner::run_module(&good, Trigger::Never).cycles
            }),
            cell("fault/traps", || {
                runner::run_module(&bad, Trigger::Never).cycles
            }),
            cell("fault/ok-after", || {
                runner::run_module(&good, Trigger::Never).cycles
            }),
        ];
        let (oks, errors) = split_results(par_cells_isolated(cells));
        assert_eq!(oks.len(), 2, "sibling cells must complete");
        assert_eq!(errors.len(), 1);
        assert_eq!(errors[0].label, "fault/traps");
        assert_eq!(errors[0].kind, "trap");
        assert!(
            errors[0].detail.contains("division by zero"),
            "{}",
            errors[0]
        );
        assert_eq!(errors[0].attempts, 1);
        emit::drain()
    };
    let serial = run_once(1);
    let parallel = run_once(4);
    runner::set_jobs(0);
    emit::set_mode(emit::EmitMode::Off);
    emit::set_redact(false);
    assert_eq!(
        serial, parallel,
        "error-bearing JSONL stream depends on the job count"
    );
    assert!(serial.contains("\"type\":\"error\""));
    assert!(serial.contains("\"label\":\"fault/traps\""));
    assert!(serial.contains("\"kind\":\"trap\""));
    // 3 cell records + 1 error record, the error right after its cell.
    assert_eq!(isf_harness::jsonl::validate(&serial), Ok(4));
    let lines: Vec<&str> = serial.lines().collect();
    assert!(lines[1].contains("\"label\":\"fault/traps\""));
    assert!(lines[2].contains("\"type\":\"error\""));
}

#[test]
fn budget_capped_cell_is_classified_as_budget_not_trap() {
    let _guard = GLOBALS.lock().unwrap();
    let spin = compile("fn main() { var i = 0; while (i < 1000000) { i = i + 1; } }");
    runner::set_cell_budget(500);
    let results = par_cells_isolated(vec![cell("fault/budget", || {
        runner::run_module(&spin, Trigger::Never).cycles
    })]);
    runner::set_cell_budget(u64::MAX);
    let (oks, errors) = split_results(results);
    assert!(oks.is_empty());
    assert_eq!(errors.len(), 1);
    assert_eq!(errors[0].kind, "budget");
    assert!(
        errors[0].detail.contains("cycle budget of 500 exceeded"),
        "{}",
        errors[0]
    );
}
