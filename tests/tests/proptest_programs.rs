//! Property-based end-to-end testing: generate random (but always valid)
//! Jive programs and check that every sampling strategy preserves their
//! semantics, verifies structurally, and keeps Property 1 — the framework
//! must be meaning-preserving on *arbitrary* code, not just the benchmark
//! suite.

use proptest::prelude::*;
// `isf_core::Strategy` (the sampling strategy) shadows the prelude's
// `proptest::strategy::Strategy`; re-import the trait anonymously so
// combinator methods stay available.
use proptest::strategy::Strategy as _;

use isf_core::{instrument_module, Options, Strategy};
use isf_exec::Trigger;
use isf_instr::{
    BlockCountInstrumentation, CallEdgeInstrumentation, EdgeCountInstrumentation,
    FieldAccessInstrumentation, Instrumentation, ModulePlan,
};
use isf_integration_tests::{compile, run_with};

/// A tiny expression language rendered into Jive source. Every operation
/// is total (no division, bounded loop counts), so generated programs
/// always terminate and never trap.
#[derive(Debug, Clone)]
enum Expr {
    Lit(i8),
    Var(u8),
    FieldF,
    FieldG,
    Add(Box<Expr>, Box<Expr>),
    Sub(Box<Expr>, Box<Expr>),
    Mul(Box<Expr>, Box<Expr>),
    Xor(Box<Expr>, Box<Expr>),
    Mod(Box<Expr>, u8),
    Helper(Box<Expr>),
    Bump(Box<Expr>),
}

#[derive(Debug, Clone)]
enum Stmt {
    Assign(u8, Expr),
    SetF(Expr),
    SetG(Expr),
    Print(Expr),
    If(Expr, Vec<Stmt>, Vec<Stmt>),
    Loop(u8, Vec<Stmt>),
}

fn expr_strategy() -> impl proptest::strategy::Strategy<Value = Expr> {
    let leaf = prop_oneof![
        any::<i8>().prop_map(Expr::Lit),
        (0u8..4).prop_map(Expr::Var),
        Just(Expr::FieldF),
        Just(Expr::FieldG),
    ];
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Add(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Sub(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Mul(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Xor(a.into(), b.into())),
            (inner.clone(), 1u8..17).prop_map(|(a, k)| Expr::Mod(a.into(), k)),
            inner.clone().prop_map(|a| Expr::Helper(a.into())),
            inner.prop_map(|a| Expr::Bump(a.into())),
        ]
    })
}

fn stmt_strategy() -> impl proptest::strategy::Strategy<Value = Stmt> {
    let simple = prop_oneof![
        ((0u8..4), expr_strategy()).prop_map(|(v, e)| Stmt::Assign(v, e)),
        expr_strategy().prop_map(Stmt::SetF),
        expr_strategy().prop_map(Stmt::SetG),
        expr_strategy().prop_map(Stmt::Print),
    ];
    simple.prop_recursive(2, 16, 4, |inner| {
        prop_oneof![
            (
                expr_strategy(),
                prop::collection::vec(inner.clone(), 0..4),
                prop::collection::vec(inner.clone(), 0..4)
            )
                .prop_map(|(c, t, e)| Stmt::If(c, t, e)),
            ((0u8..5), prop::collection::vec(inner, 1..4)).prop_map(|(n, b)| Stmt::Loop(n, b)),
        ]
    })
}

fn render_expr(e: &Expr, out: &mut String) {
    match e {
        Expr::Lit(v) => out.push_str(&format!("({v})")),
        Expr::Var(v) => out.push_str(&format!("v{v}")),
        Expr::FieldF => out.push_str("p.f"),
        Expr::FieldG => out.push_str("p.g"),
        Expr::Add(a, b) | Expr::Sub(a, b) | Expr::Mul(a, b) | Expr::Xor(a, b) => {
            let op = match e {
                Expr::Add(..) => "+",
                Expr::Sub(..) => "-",
                Expr::Mul(..) => "*",
                _ => "^",
            };
            out.push('(');
            render_expr(a, out);
            out.push_str(&format!(" {op} "));
            render_expr(b, out);
            out.push(')');
        }
        Expr::Mod(a, k) => {
            out.push('(');
            render_expr(a, out);
            out.push_str(&format!(" % {k}"));
            out.push(')');
        }
        Expr::Helper(a) => {
            out.push_str("helper(");
            render_expr(a, out);
            out.push(')');
        }
        Expr::Bump(a) => {
            out.push_str("p.bump(");
            render_expr(a, out);
            out.push(')');
        }
    }
}

fn render_stmts(stmts: &[Stmt], out: &mut String, indent: usize, loop_id: &mut u32) {
    let pad = "    ".repeat(indent);
    for s in stmts {
        match s {
            Stmt::Assign(v, e) => {
                out.push_str(&format!("{pad}v{v} = "));
                render_expr(e, out);
                out.push_str(";\n");
            }
            Stmt::SetF(e) => {
                out.push_str(&format!("{pad}p.f = "));
                render_expr(e, out);
                out.push_str(";\n");
            }
            Stmt::SetG(e) => {
                out.push_str(&format!("{pad}p.g = "));
                render_expr(e, out);
                out.push_str(";\n");
            }
            Stmt::Print(e) => {
                out.push_str(&format!("{pad}print("));
                render_expr(e, out);
                out.push_str(");\n");
            }
            Stmt::If(c, t, e) => {
                out.push_str(&format!("{pad}if (("));
                render_expr(c, out);
                out.push_str(") % 2 == 0) {\n");
                render_stmts(t, out, indent + 1, loop_id);
                out.push_str(&format!("{pad}}} else {{\n"));
                render_stmts(e, out, indent + 1, loop_id);
                out.push_str(&format!("{pad}}}\n"));
            }
            Stmt::Loop(n, body) => {
                let id = *loop_id;
                *loop_id += 1;
                out.push_str(&format!("{pad}var loop{id} = 0;\n"));
                out.push_str(&format!("{pad}while (loop{id} < {n}) {{\n"));
                render_stmts(body, out, indent + 1, loop_id);
                out.push_str(&format!("{pad}    loop{id} = loop{id} + 1;\n"));
                out.push_str(&format!("{pad}}}\n"));
            }
        }
    }
}

fn render_program(stmts: &[Stmt]) -> String {
    let mut body = String::new();
    let mut loop_id = 0;
    render_stmts(stmts, &mut body, 1, &mut loop_id);
    format!(
        "class P {{
    field f; field g;
    method bump(x) {{ self.f = self.f + x; return self.f; }}
}}
fn helper(x) {{ return (x * 7 + 3) % 1000003; }}
fn main() {{
    var v0 = 1; var v1 = 2; var v2 = 3; var v3 = 5;
    var p = new P;
{body}    print(v0); print(v1); print(v2); print(v3);
    print(p.f); print(p.g);
}}"
    )
}

fn all_kinds() -> Vec<&'static dyn Instrumentation> {
    vec![
        &CallEdgeInstrumentation,
        &FieldAccessInstrumentation,
        &BlockCountInstrumentation,
        &EdgeCountInstrumentation,
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn every_strategy_preserves_random_program_semantics(
        stmts in prop::collection::vec(stmt_strategy(), 1..8)
    ) {
        let src = render_program(&stmts);
        let module = compile(&src);
        let baseline = run_with(&module, Trigger::Never);
        let plan = ModulePlan::build(&module, &all_kinds());
        for strategy in [
            Strategy::Exhaustive,
            Strategy::FullDuplication,
            Strategy::PartialDuplication,
            Strategy::NoDuplication,
        ] {
            let (out, stats) =
                instrument_module(&module, &plan, &Options::new(strategy)).unwrap();
            isf_ir::verify::verify_module(&out).unwrap();
            for trigger in [Trigger::Always, Trigger::Counter { interval: 3 }] {
                let o = run_with(&out, trigger);
                prop_assert_eq!(&o.output, &baseline.output,
                    "{} diverged under {:?}\nprogram:\n{}", strategy, trigger, src);
                if matches!(strategy, Strategy::FullDuplication | Strategy::PartialDuplication) {
                    prop_assert!(o.satisfies_property1_vs(&baseline));
                }
            }
            // Exhaustive instrumentation intentionally leaves operations
            // in the original code; the structural guarantees below only
            // apply to the sampling strategies.
            if strategy != Strategy::Exhaustive {
                for (id, f) in out.functions() {
                    let fs = &stats.functions[id.index()];
                    prop_assert!(isf_core::property::dup_region_is_dag(f, fs).is_ok());
                    prop_assert!(
                        isf_core::property::instrumentation_confined_to_dup_code(f, fs).is_ok()
                    );
                }
            }
        }
    }

    #[test]
    fn interval_one_matches_exhaustive_on_random_programs(
        stmts in prop::collection::vec(stmt_strategy(), 1..6)
    ) {
        let src = render_program(&stmts);
        let module = compile(&src);
        let plan = ModulePlan::build(&module, &all_kinds());
        let (exh, _) =
            instrument_module(&module, &plan, &Options::new(Strategy::Exhaustive)).unwrap();
        let perfect = run_with(&exh, Trigger::Never).profile;
        for strategy in [
            Strategy::FullDuplication,
            Strategy::PartialDuplication,
            Strategy::NoDuplication,
        ] {
            let (out, _) = instrument_module(&module, &plan, &Options::new(strategy)).unwrap();
            let sampled = run_with(&out, Trigger::Always).profile;
            prop_assert_eq!(perfect.call_edges(), sampled.call_edges());
            prop_assert_eq!(perfect.field_accesses(), sampled.field_accesses());
            prop_assert_eq!(perfect.blocks(), sampled.blocks());
            prop_assert_eq!(perfect.edges(), sampled.edges());
        }
    }

    #[test]
    fn trigger_off_collects_nothing_on_random_programs(
        stmts in prop::collection::vec(stmt_strategy(), 1..6)
    ) {
        let src = render_program(&stmts);
        let module = compile(&src);
        let plan = ModulePlan::build(&module, &all_kinds());
        for strategy in [
            Strategy::FullDuplication,
            Strategy::PartialDuplication,
            Strategy::NoDuplication,
        ] {
            let (out, _) = instrument_module(&module, &plan, &Options::new(strategy)).unwrap();
            let o = run_with(&out, Trigger::Never);
            prop_assert!(o.profile.is_empty());
            prop_assert_eq!(o.samples_taken, 0);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn optimizer_preserves_random_program_semantics(
        stmts in prop::collection::vec(stmt_strategy(), 1..8)
    ) {
        let src = render_program(&stmts);
        let module = compile(&src);
        let optimized = isf_frontend::compile_optimized(&src).unwrap();
        let a = run_with(&module, Trigger::Never);
        let b = run_with(&optimized, Trigger::Never);
        prop_assert_eq!(&a.output, &b.output, "optimizer diverged\nprogram:\n{}", src);
        prop_assert!(
            b.instructions <= a.instructions,
            "optimizer must not add work: {} vs {}", b.instructions, a.instructions
        );
    }

    #[test]
    fn optimized_code_samples_correctly(
        stmts in prop::collection::vec(stmt_strategy(), 1..6)
    ) {
        // The real pipeline: optimize first, instrument second.
        let src = render_program(&stmts);
        let optimized = isf_frontend::compile_optimized(&src).unwrap();
        let baseline = run_with(&optimized, Trigger::Never);
        let plan = ModulePlan::build(&optimized, &all_kinds());
        let (out, _) = instrument_module(
            &optimized, &plan, &Options::new(Strategy::FullDuplication),
        ).unwrap();
        isf_ir::verify::verify_module(&out).unwrap();
        let o = run_with(&out, Trigger::Counter { interval: 5 });
        prop_assert_eq!(&o.output, &baseline.output);
        prop_assert!(o.satisfies_property1_vs(&baseline));
    }
}
