//! Differential property testing of the self-profiling layer: running
//! with an [`isf_exec::OpProfile`] sink must not change execution at all
//! (identical [`isf_exec::Outcome`]s and traps, both engines), and the
//! profile itself must be exact — per-opcode totals summing to the run's
//! own instruction and cycle counts — and engine-independent: the
//! tree-walking reference records every dispatch individually, while the
//! pre-decoded engine reconstructs counts from flow-entry deltas after
//! the run, and the two must produce the identical profile for the
//! identical run.

use proptest::prelude::*;
use proptest::test_runner::TestCaseError;

use isf_core::{instrument_module, Options, Strategy};
use isf_exec::profile::FIRST_FUSED;
use isf_exec::{
    run_naive, run_naive_profiled, run_prepared, run_prepared_profiled, ExecLimits, FuseGuidance,
    FuseMode, OpProfile, PreparedModule, ProfileSink, Trigger, VmConfig,
};
use isf_instr::{
    BlockCountInstrumentation, CallEdgeInstrumentation, EdgeCountInstrumentation,
    FieldAccessInstrumentation, Instrumentation, ModulePlan,
};
use isf_integration_tests::compile;
use isf_integration_tests::program_gen::{render_program, stmt_strategy};

fn all_kinds() -> Vec<&'static dyn Instrumentation> {
    vec![
        &CallEdgeInstrumentation,
        &FieldAccessInstrumentation,
        &BlockCountInstrumentation,
        &EdgeCountInstrumentation,
    ]
}

/// Asserts the profiled entry points are observationally identical to the
/// unprofiled ones on `module`, that both engines produce the *same*
/// profile, and that the profile's totals reconcile exactly with the
/// outcome's counters.
fn profiles_agree(module: &isf_ir::Module, cfg: &VmConfig) -> Result<(), TestCaseError> {
    let plain_naive = run_naive(module, cfg);
    let mut naive_profile = OpProfile::new();
    let profiled_naive = run_naive_profiled(module, cfg, &mut naive_profile);
    prop_assert_eq!(
        &profiled_naive,
        &plain_naive,
        "profiling changed the naive engine's result"
    );

    // The unfused prepared pipeline dispatches the same plain opcode per
    // source instruction as the tree-walker, so its reconstructed profile
    // must equal the naive engine's per-dispatch-recorded one exactly —
    // counts, instructions, cycles, and the sample series.
    let unfused = PreparedModule::prepare_with(module, &cfg.cost, FuseMode::Off);
    let plain_unfused = run_prepared(&unfused, cfg);
    let mut unfused_profile = OpProfile::new();
    let profiled_unfused = run_prepared_profiled(&unfused, cfg, &mut unfused_profile);
    prop_assert_eq!(
        &profiled_unfused,
        &plain_unfused,
        "profiling changed the prepared engine's result"
    );
    prop_assert_eq!(
        &unfused_profile,
        &naive_profile,
        "unfused prepared profile diverged from the naive profile"
    );

    // Fusion changes which opcodes run, never what the run does: the
    // fused profile totals must reconcile with the same outcome.
    let fused = PreparedModule::prepare_with(module, &cfg.cost, FuseMode::Fuse);
    let mut fused_profile = OpProfile::new();
    let profiled_fused = run_prepared_profiled(&fused, cfg, &mut fused_profile);
    prop_assert_eq!(
        &profiled_fused,
        &plain_naive,
        "fused profiled run diverged from the reference"
    );

    for (profile, outcome, label) in [
        (&naive_profile, &profiled_naive, "naive"),
        (&unfused_profile, &profiled_unfused, "unfused"),
        (&fused_profile, &profiled_fused, "fused"),
    ] {
        if let Ok(o) = outcome {
            prop_assert_eq!(
                profile.total_instructions(),
                o.instructions,
                "{} profile instructions != outcome",
                label
            );
            prop_assert_eq!(
                profile.total_cycles(),
                o.cycles,
                "{} profile cycles != outcome",
                label
            );
            prop_assert_eq!(
                profile.checks_per_sample().len() as u64,
                o.samples_taken,
                "{} profile sample series != outcome",
                label
            );
        }
    }
    // On traps there is no outcome to reconcile against, but the two
    // identically-trapping engines already vouched for each other's
    // totals via the profile equality above.
    prop_assert_eq!(
        fused_profile.total_instructions(),
        naive_profile.total_instructions(),
        "fusion changed the dynamic instruction count"
    );
    prop_assert_eq!(
        fused_profile.total_cycles(),
        naive_profile.total_cycles(),
        "fusion changed the dynamic cycle count"
    );

    // Guided fusion re-partitions blocks around a warmup profile. The
    // realistic guidance is the fused run's own remainder profile (the
    // harness's `--pgo` flow); the saturated one marks every plain opcode
    // hot, forcing every eligible sequence into a generalized group.
    let mut saturated = OpProfile::new();
    for op in 0..FIRST_FUSED {
        saturated.record_dispatches(op, 1, 1, 1);
    }
    for (guidance, label) in [
        (
            FuseGuidance::from_profile(&fused_profile),
            "warmup guidance",
        ),
        (FuseGuidance::from_profile(&saturated), "saturated guidance"),
    ] {
        let guided =
            PreparedModule::prepare_with(module, &cfg.cost, FuseMode::Guided(Box::new(guidance)));
        let mut guided_profile = OpProfile::new();
        let profiled_guided = run_prepared_profiled(&guided, cfg, &mut guided_profile);
        prop_assert_eq!(
            &profiled_guided,
            &plain_naive,
            "guided run diverged from the reference under {}",
            label
        );
        prop_assert_eq!(
            guided_profile.total_instructions(),
            naive_profile.total_instructions(),
            "{} changed the dynamic instruction count",
            label
        );
        prop_assert_eq!(
            guided_profile.total_cycles(),
            naive_profile.total_cycles(),
            "{} changed the dynamic cycle count",
            label
        );
        prop_assert_eq!(
            guided_profile.checks_per_sample().len(),
            naive_profile.checks_per_sample().len(),
            "{} changed the sample series",
            label
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn profiles_agree_on_random_programs(
        stmts in prop::collection::vec(stmt_strategy(), 1..8)
    ) {
        let module = compile(&render_program(&stmts));
        let cfg = VmConfig {
            limits: ExecLimits::cycles(500_000_000),
            ..VmConfig::default()
        };
        profiles_agree(&module, &cfg)?;
    }

    #[test]
    fn profiles_agree_on_instrumented_programs(
        stmts in prop::collection::vec(stmt_strategy(), 1..6)
    ) {
        // Sampled instrumentation exercises Check dispatches, the firing
        // path (sample-switch surcharge attribution), and the
        // inter-sample series.
        let module = compile(&render_program(&stmts));
        let plan = ModulePlan::build(&module, &all_kinds());
        for strategy in [Strategy::FullDuplication, Strategy::NoDuplication] {
            let (out, _) = instrument_module(&module, &plan, &Options::new(strategy)).unwrap();
            let cfg = VmConfig {
                trigger: Trigger::Counter { interval: 3 },
                limits: ExecLimits::cycles(500_000_000),
                ..VmConfig::default()
            };
            profiles_agree(&out, &cfg)?;
        }
    }

    #[test]
    fn profiles_agree_on_trapping_programs(
        stmts in prop::collection::vec(stmt_strategy(), 1..8),
        max_cycles in 1u64..5_000,
        max_heap in 1u64..128,
        max_stack in 2usize..24,
    ) {
        // Tight budgets make most programs trap mid-execution — including
        // mid-arm inside fused superinstructions — where the prepared
        // engine's post-run reconstruction must still attribute the
        // partial charge of the trapping dispatch exactly as the naive
        // engine's clock delta did.
        let module = compile(&render_program(&stmts));
        let cfg = VmConfig {
            limits: ExecLimits {
                max_cycles: Some(max_cycles),
                max_heap_words: Some(max_heap),
                max_stack,
            },
            ..VmConfig::default()
        };
        profiles_agree(&module, &cfg)?;
    }

    #[test]
    fn profiles_agree_under_timer_trigger(
        stmts in prop::collection::vec(stmt_strategy(), 1..6)
    ) {
        let module = compile(&render_program(&stmts));
        let plan = ModulePlan::build(&module, &all_kinds());
        let (out, _) = instrument_module(
            &module, &plan, &Options::new(Strategy::FullDuplication),
        ).unwrap();
        let cfg = VmConfig {
            trigger: Trigger::TimerBit { period: 997 },
            limits: ExecLimits::cycles(500_000_000),
            ..VmConfig::default()
        };
        profiles_agree(&out, &cfg)?;
    }
}
