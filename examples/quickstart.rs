//! Quickstart: compile a program, sample an expensive profile cheaply.
//!
//! ```text
//! cargo run -p isf-examples --bin quickstart
//! ```
//!
//! Walks the whole pipeline: Jive source → IR → instrumentation plan →
//! Full-Duplication transform → sampled execution, then compares the cost
//! and accuracy of sampling against exhaustive instrumentation.

use isf_core::{instrument_module, Options, Strategy};
use isf_exec::{run, Trigger, VmConfig};
use isf_instr::{CallEdgeInstrumentation, ModulePlan};
use isf_profile::{overlap, report};

const PROGRAM: &str = "
    class Counter { field n; method bump(by) { self.n = self.n + by; return self.n; } }
    fn fib(n) { if (n < 2) { return n; } return fib(n - 1) + fib(n - 2); }
    fn work(c, rounds) {
        var i = 0;
        while (i < rounds) {
            c.bump(fib(10) % 7);
            i = i + 1;
        }
        return c.n;
    }
    fn main() {
        var c = new Counter;
        print(work(c, 150));
    }";

fn main() {
    // 1. Compile.
    let module = isf_frontend::compile(PROGRAM).expect("program compiles");
    let baseline = run(&module, &VmConfig::default()).expect("baseline runs");
    println!("baseline: {} simulated cycles", baseline.cycles);

    // 2. Plan call-edge instrumentation over every method.
    let plan = ModulePlan::build(&module, &[&CallEdgeInstrumentation]);
    println!(
        "planned {} instrumentation operations",
        plan.num_insertions()
    );

    // 3. Exhaustive instrumentation: the expensive way (paper Table 1).
    let (exhaustive, _) =
        instrument_module(&module, &plan, &Options::new(Strategy::Exhaustive)).unwrap();
    let perfect = run(&exhaustive, &VmConfig::default()).unwrap();
    println!(
        "exhaustive: {:+.1}% overhead, {} call-edge events",
        perfect.overhead_vs(&baseline),
        perfect.profile.total_call_edge_events()
    );

    // 4. The framework: Full-Duplication + counter-based sampling.
    let (sampled_module, stats) =
        instrument_module(&module, &plan, &Options::new(Strategy::FullDuplication)).unwrap();
    println!(
        "full-duplication: {} checks inserted, {} blocks duplicated",
        stats.total_checks(),
        stats.total_duplicated_blocks()
    );
    let cfg = VmConfig {
        trigger: Trigger::Counter { interval: 101 },
        ..VmConfig::default()
    };
    let sampled = run(&sampled_module, &cfg).unwrap();
    assert_eq!(sampled.output, baseline.output, "semantics preserved");
    println!(
        "sampled (interval 101): {:+.1}% overhead, {} samples",
        sampled.overhead_vs(&baseline),
        sampled.samples_taken
    );
    println!(
        "profile accuracy: {:.1}% overlap with the perfect profile",
        overlap::call_edge_overlap(&perfect.profile, &sampled.profile)
    );

    // 5. What the profile says.
    println!("\nhottest call edges (sampled):");
    print!(
        "{}",
        report::format_top_call_edges(&sampled.profile, &module, 5)
    );
}
