//! An adaptive-JIT client: drive inlining decisions from a *sampled*
//! call-edge profile — the paper's motivating use case ("profile-guided
//! automatic inline expansion", its references \[19\] and \[6\]).
//!
//! ```text
//! cargo run -p isf-examples --bin adaptive_inliner
//! ```
//!
//! An online optimizer cannot afford an exhaustive call-edge profile
//! (Table 1: ~90% overhead). This example shows that the decisions an
//! inliner would take from a cheap sampled profile agree with the
//! decisions it would take from the perfect profile.

use std::collections::BTreeSet;

use isf_core::{instrument_module, Options, Strategy};
use isf_exec::{run, Outcome, Trigger, VmConfig};
use isf_instr::{CallEdgeInstrumentation, ModulePlan};
use isf_profile::ProfileData;
use isf_workloads::{by_name, Scale};

/// An inlining policy: inline every call edge that accounts for at least
/// `threshold_pct` of all call-edge events.
fn inline_set(profile: &ProfileData, threshold_pct: f64) -> BTreeSet<String> {
    let total = profile.total_call_edge_events().max(1) as f64;
    profile
        .call_edges()
        .iter()
        .filter(|&(_, &count)| count as f64 / total * 100.0 >= threshold_pct)
        .map(|(&(caller, site, callee), _)| format!("{caller}@{}→{callee}", site.0))
        .collect()
}

fn main() {
    let workload = by_name("javac", Scale::Default).expect("javac is in the suite");
    let module = workload.compile();
    let baseline = run(&module, &VmConfig::default()).expect("baseline runs");

    let plan = ModulePlan::build(&module, &[&CallEdgeInstrumentation]);

    // The offline way: exhaustive profile.
    let (exhaustive, _) =
        instrument_module(&module, &plan, &Options::new(Strategy::Exhaustive)).unwrap();
    let perfect: Outcome = run(&exhaustive, &VmConfig::default()).unwrap();

    // The online way: Full-Duplication sampling.
    let (sampled_module, _) =
        instrument_module(&module, &plan, &Options::new(Strategy::FullDuplication)).unwrap();
    let cfg = VmConfig {
        trigger: Trigger::Counter { interval: 151 },
        ..VmConfig::default()
    };
    let sampled = run(&sampled_module, &cfg).unwrap();

    println!(
        "javac: baseline {} cycles; exhaustive {:+.1}%; sampled {:+.1}% ({} samples)",
        baseline.cycles,
        perfect.overhead_vs(&baseline),
        sampled.overhead_vs(&baseline),
        sampled.samples_taken,
    );

    for threshold in [1.0, 2.0, 5.0] {
        let want = inline_set(&perfect.profile, threshold);
        let got = inline_set(&sampled.profile, threshold);
        let agree = want.intersection(&got).count();
        let union = want.union(&got).count().max(1);
        println!(
            "inline threshold {threshold:>4.1}%: perfect picks {:>2}, sampled picks {:>2}, \
             agreement {:>3.0}%",
            want.len(),
            got.len(),
            agree as f64 / union as f64 * 100.0
        );
    }
    println!(
        "\nthe sampled profile costs a fraction of the exhaustive one and drives\n\
         the same inlining choices — the paper's case for online feedback-directed\n\
         optimization."
    );
}
