//! A data-layout client: order each class's fields by sampled access
//! frequency — the cache-conscious layout optimizations the paper cites as
//! consumers of field-access profiles (its references \[16\], \[17\], \[20\]).
//!
//! ```text
//! cargo run -p isf-examples --bin data_layout
//! ```

use isf_core::{instrument_module, Options, Strategy};
use isf_exec::{run, Trigger, VmConfig};
use isf_instr::{FieldAccessInstrumentation, ModulePlan};
use isf_ir::{ClassId, Module};
use isf_profile::ProfileData;
use isf_workloads::{by_name, Scale};

/// Hot-first field order for one class, from a profile.
fn layout_for(profile: &ProfileData, module: &Module, class: ClassId) -> Vec<(String, u64)> {
    let mut fields: Vec<(String, u64)> = module
        .class(class)
        .layout()
        .iter()
        .map(|&sym| {
            let count = profile
                .field_accesses()
                .get(&(class, sym))
                .copied()
                .unwrap_or(0);
            (module.field_name(sym).to_owned(), count)
        })
        .collect();
    fields.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    fields
}

fn main() {
    let workload = by_name("compress", Scale::Default).expect("compress is in the suite");
    let module = workload.compile();
    let baseline = run(&module, &VmConfig::default()).expect("baseline runs");

    let plan = ModulePlan::build(&module, &[&FieldAccessInstrumentation]);

    let (exhaustive, _) =
        instrument_module(&module, &plan, &Options::new(Strategy::Exhaustive)).unwrap();
    let perfect = run(&exhaustive, &VmConfig::default()).unwrap();

    let (sampled_module, _) =
        instrument_module(&module, &plan, &Options::new(Strategy::FullDuplication)).unwrap();
    let sampled = run(
        &sampled_module,
        &VmConfig {
            trigger: Trigger::Counter { interval: 997 },
            ..VmConfig::default()
        },
    )
    .unwrap();

    println!(
        "compress: exhaustive field profile costs {:+.1}%, sampled costs {:+.1}%",
        perfect.overhead_vs(&baseline),
        sampled.overhead_vs(&baseline),
    );

    for (class_id, class) in module.classes() {
        if class.num_fields() == 0 {
            continue;
        }
        let want = layout_for(&perfect.profile, &module, class_id);
        let got = layout_for(&sampled.profile, &module, class_id);
        println!("\nclass {} — hot-first field layout:", class.name());
        println!(
            "{:<12} {:>12} | {:<12} {:>9}",
            "perfect", "count", "sampled", "count"
        );
        for (w, g) in want.iter().zip(&got) {
            println!("{:<12} {:>12} | {:<12} {:>9}", w.0, w.1, g.0, g.1);
        }
        let agree = want.iter().zip(&got).filter(|(w, g)| w.0 == g.0).count();
        println!("layout agreement: {}/{} positions", agree, want.len());
    }
}
