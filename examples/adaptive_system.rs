//! A complete adaptive-optimization controller built from the framework's
//! pieces — the deployment the paper was written for (its reference \[5\],
//! "Adaptive optimization in the Jalapeño JVM").
//!
//! ```text
//! cargo run -p isf-examples --bin adaptive_system
//! ```
//!
//! Epoch 0 instruments *everything* (the paper's worst case) for one cheap
//! sampled run to find the hot methods. Later epochs instrument only the
//! methods covering 90% of the heat (selective instrumentation, §3/§4.1),
//! feed a convergence tracker (convergent profiling, refs \[16\]/\[26\]), and
//! when the profile stops moving the controller sets the sample condition
//! permanently to false (§2's shutdown mode) — leaving only the checking
//! code's few-percent overhead.

use std::collections::HashSet;

use isf_core::{instrument_module, instrument_module_selective, Options, Strategy};
use isf_exec::{run, Trigger, VmConfig};
use isf_instr::{CallEdgeInstrumentation, FieldAccessInstrumentation, ModulePlan};
use isf_profile::{convergence::ConvergenceTracker, hotness};
use isf_workloads::{by_name, Scale};

fn main() {
    let workload = by_name("jess", Scale::Default).expect("jess is in the suite");
    let module = workload.compile();
    let baseline = run(&module, &VmConfig::default()).expect("baseline runs");
    println!("jess baseline: {} cycles", baseline.cycles);

    let plan = ModulePlan::build(
        &module,
        &[&CallEdgeInstrumentation, &FieldAccessInstrumentation],
    );
    let sampled_cfg = |interval| VmConfig {
        trigger: Trigger::Counter { interval },
        ..VmConfig::default()
    };

    // --- Epoch 0: instrument everything, find the hot methods. --------
    let (all_instrumented, _) =
        instrument_module(&module, &plan, &Options::new(Strategy::FullDuplication)).unwrap();
    let scout = run(&all_instrumented, &sampled_cfg(251)).unwrap();
    println!(
        "epoch 0 (all methods): {:+.1}% overhead, {} samples",
        scout.overhead_vs(&baseline),
        scout.samples_taken
    );
    let hot = hotness::functions_covering(&scout.profile, 0.9);
    println!("hot methods covering 90% of heat:");
    for &f in &hot {
        println!("  {}", module.function(f).name());
    }

    // --- Later epochs: selective instrumentation until convergence. ---
    let selected: HashSet<_> = hot.iter().copied().collect();
    let (selective, stats) = instrument_module_selective(
        &module,
        &plan,
        &Options::new(Strategy::FullDuplication),
        &selected,
    )
    .unwrap();
    println!(
        "selective instrumentation: {} checks, +{} bytes (vs +{} for all methods)",
        stats.total_checks(),
        stats.space_increase_bytes(),
        {
            let (_, all_stats) =
                instrument_module(&module, &plan, &Options::new(Strategy::FullDuplication))
                    .unwrap();
            all_stats.space_increase_bytes()
        }
    );

    let mut tracker = ConvergenceTracker::new(97.0, 2);
    let mut epoch = 1;
    loop {
        // Each epoch is one deterministic sampled run; a prime-ish
        // interval avoids aliasing with the rule-matching loops.
        let o = run(&selective, &sampled_cfg(97 + epoch as u64 * 2)).unwrap();
        let converged = tracker.observe(&o.profile);
        println!(
            "epoch {epoch}: {:+.1}% overhead, {} call-edge events, converged: {converged}",
            o.overhead_vs(&baseline),
            o.profile.total_call_edge_events(),
        );
        if converged || epoch >= 8 {
            break;
        }
        epoch += 1;
    }

    // --- Shutdown: sample condition permanently false (§2). -----------
    let off = run(&selective, &VmConfig::default()).unwrap();
    println!(
        "profiling off: {:+.1}% residual checking overhead, 0 samples",
        off.overhead_vs(&baseline)
    );
    assert_eq!(off.samples_taken, 0);
    println!(
        "\nthe controller found the hot set, collected a stable profile, and shut\n\
         sampling down — total cost a few percent, never a 100%+ profiling phase."
    );
}
