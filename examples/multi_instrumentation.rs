//! Several instrumentations at once under one framework — the paper's
//! point that "multiple types of instrumentation can be used
//! simultaneously, without the normal concern for overhead", recompiling
//! the method only once.
//!
//! ```text
//! cargo run -p isf-examples --bin multi_instrumentation
//! ```

use isf_core::{instrument_module, Options, Strategy};
use isf_exec::{run, Trigger, VmConfig};
use isf_instr::{
    BlockCountInstrumentation, CallEdgeInstrumentation, EdgeCountInstrumentation,
    FieldAccessInstrumentation, Instrumentation, ModulePlan, ValueProfileInstrumentation,
};
use isf_workloads::{by_name, Scale};

fn main() {
    let workload = by_name("mtrt", Scale::Default).expect("mtrt is in the suite");
    let module = workload.compile();
    let baseline = run(&module, &VmConfig::default()).expect("baseline runs");

    let all: Vec<&dyn Instrumentation> = vec![
        &CallEdgeInstrumentation,
        &FieldAccessInstrumentation,
        &BlockCountInstrumentation,
        &EdgeCountInstrumentation,
        &ValueProfileInstrumentation,
    ];

    // The cost of each instrumentation alone, exhaustively.
    println!("exhaustive overhead per instrumentation (mtrt):");
    let mut exhaustive_sum = 0.0;
    for kind in &all {
        let plan = ModulePlan::build(&module, std::slice::from_ref(kind));
        let (m, _) =
            instrument_module(&module, &plan, &Options::new(Strategy::Exhaustive)).unwrap();
        let o = run(&m, &VmConfig::default()).unwrap();
        let pct = o.overhead_vs(&baseline);
        exhaustive_sum += pct;
        println!("  {:<14} {:+.1}%", kind.name(), pct);
    }
    println!("  {:<14} {:+.1}%", "sum", exhaustive_sum);

    // All five at once, sampled: one recompilation, one set of checks.
    let plan = ModulePlan::build(&module, &all);
    let (sampled_module, stats) =
        instrument_module(&module, &plan, &Options::new(Strategy::FullDuplication)).unwrap();
    let sampled = run(
        &sampled_module,
        &VmConfig {
            trigger: Trigger::Counter { interval: 499 },
            ..VmConfig::default()
        },
    )
    .unwrap();
    assert_eq!(sampled.output, baseline.output);

    println!(
        "\nall five sampled together (interval 499): {:+.1}% total overhead",
        sampled.overhead_vs(&baseline)
    );
    println!(
        "one transform: {} checks guard {} planned operations",
        stats.total_checks(),
        stats.total_ops()
    );
    println!(
        "collected: {} call edges, {} field counters, {} block counters, \
         {} CFG edge counters, {} value sites",
        sampled.profile.call_edges().len(),
        sampled.profile.field_accesses().len(),
        sampled.profile.blocks().len(),
        sampled.profile.edges().len(),
        sampled.profile.values().len(),
    );

    // A taste of each profile.
    if let Some((site, hist)) = sampled.profile.values().iter().next() {
        let total: u64 = hist.values().sum();
        println!(
            "value site {:?}: {} observations over {} distinct values",
            site,
            total,
            hist.len()
        );
    }
}
